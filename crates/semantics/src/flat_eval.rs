//! Least-fixpoint engines over the flat arena representation
//! ([`FlatView`]), sequential and morsel-parallel.
//!
//! Both engines compute the same least fixpoint of `V_{P,C}` as the
//! interpretive worklist engines in [`crate::fixpoint`] /
//! [`crate::decomp`], but over [`olp_ground::flat`]'s dense arenas:
//! truth state is a [`BitSet`] indexed by [`olp_core::GLit::code`]
//! (one bit per signed atom), watch/attack lists are CSR slices, and
//! stratum membership is a range check — no hashing anywhere in the
//! inner loop.
//!
//! ## The morsel scheduler
//!
//! [`least_model_morsel`] replaces the per-level `Barrier` wavefront
//! ([`crate::decomp::least_model_wavefront`]) with **work-stealing over
//! morsels**: contiguous runs of whole strata, size-balanced by
//! [`FlatView::morsels`]. Each morsel is an independent scheduling unit
//! with a precomputed set of predecessor morsels (from the flat view's
//! stratum dependency edges); a morsel becomes runnable when its last
//! predecessor completes, with no global round barrier anywhere.
//! Workers keep private deques and steal when idle, so a long-running
//! stratum never parks the rest of the pool.
//!
//! **Determinism.** Workers evaluate a morsel against a private
//! [`BitSet`] plus the shared [`AtomicBitSet`] of already-published
//! literals, and publish their derived bits only at **morsel close**
//! (merge-at-close), after which dependent morsels are released. Every
//! literal a morsel's rules can depend on is either derived inside the
//! morsel (read from the private set) or owned by a predecessor stratum
//! (published before this morsel was released), so each morsel computes
//! exactly its strata's fragment of the least fixpoint. The least model
//! is unique (`V_{P,C}` is monotone), hence the final bit set — and the
//! [`Interpretation`] built from it — is byte-identical at every thread
//! count and under every steal schedule.
//!
//! **Anytime contract.** Each morsel evaluation runs under its own
//! [`olp_core::Ticker`] over the shared [`Budget`], so step accounting
//! stays exact at morsel boundaries even under work-stealing. A tripped
//! worker still publishes its private bits — every one of them was
//! derived by a rule whose body held and whose attackers were blocked,
//! conditions monotone in the growing interpretation — then raises the
//! stop flag. The partial result is therefore always a sound monotone
//! prefix of the least model.
//!
//! **Small inputs.** Parallel evaluation below
//! [`MorselCfg::seq_threshold`] total weight is a pure loss (thread
//! spawn + publication overhead on microsecond-scale fixpoints), so
//! such programs take the sequential path automatically regardless of
//! the configured thread count.

use crate::view::View;
use olp_core::{
    AtomId, AtomicBitSet, BitSet, Budget, Eval, GLit, Interpretation, InterruptReason, Interrupted,
    Ticker,
};
use olp_ground::{FlatView, Morsel};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Compiles the flat view corresponding to an interpretive [`View`]
/// (same component, same rule subset — including restricted sub-views).
pub fn flatten(view: &View) -> FlatView {
    let rules: Vec<u32> = (0..view.len() as u32)
        .map(|li| view.global_index(li))
        .collect();
    FlatView::from_rules(view.gp, view.comp, &rules)
}

/// Reusable per-engine scratch: one slot per flat rule. Allocated
/// zeroed; every rule belongs to exactly one stratum and each stratum
/// is evaluated at most once per fixpoint, so no resets are needed
/// between strata (or between the morsels of one run).
struct Scratch {
    unsat: Vec<u32>,
    over: Vec<u32>,
    defeat: Vec<u32>,
    blocked: Vec<bool>,
    fired: Vec<bool>,
    queue: Vec<GLit>,
}

impl Scratch {
    fn new(n_rules: usize) -> Self {
        Scratch {
            unsat: vec![0; n_rules],
            over: vec![0; n_rules],
            defeat: vec![0; n_rules],
            blocked: vec![false; n_rules],
            fired: vec![false; n_rules],
            queue: Vec::new(),
        }
    }
}

/// Runs the stratified worklist over strata `s_lo..s_hi` of `fv`.
///
/// Literal truth is `local ∪ upstream`: `upstream` answers for bits
/// published by strata outside the range (the sequential engine passes
/// the always-false closure for the first call and accumulates into
/// `local`; the morsel workers pass the shared [`AtomicBitSet`]).
/// Newly derived bits go to `local`. On interruption `local` still
/// holds a sound monotone prefix of the range's derivations.
/// When `definite` is set the caller asserts the view is **negation-free**
/// (no negative heads, no negative body literals — e.g. proved by
/// `olp-analyze`'s program profile): no literal can ever be blocked and
/// the attack lists are empty, so the blockedness bookkeeping and the
/// complement watch scan are skipped wholesale. Passing `definite` on a
/// view that does contain negation is unsound.
#[allow(clippy::too_many_arguments)] // the hot inner loop: one arg per piece of scratch state
fn eval_strata(
    fv: &FlatView,
    upstream: &dyn Fn(usize) -> bool,
    local: &mut BitSet,
    sc: &mut Scratch,
    definite: bool,
    s_lo: u32,
    s_hi: u32,
    ticker: &mut Ticker<'_>,
) -> Result<(), InterruptReason> {
    for s in s_lo..s_hi {
        let (lo, hi) = fv.stratum(s as usize);
        if lo == hi {
            continue;
        }
        macro_rules! holds {
            ($code:expr) => {{
                let c = $code;
                local.contains(c) || upstream(c)
            }};
        }
        macro_rules! try_fire {
            ($f:expr) => {{
                let f = $f;
                let z = f as usize;
                if sc.unsat[z] == 0 && sc.over[z] == 0 && sc.defeat[z] == 0 && !sc.fired[z] {
                    sc.fired[z] = true;
                    let head = fv.head(f);
                    debug_assert!(
                        definite || !holds!(head.complement().code()),
                        "V preserves consistency"
                    );
                    if local.insert(head.code()) {
                        sc.queue.push(head);
                    }
                }
            }};
        }
        // Initialise the stratum's counters against everything derived
        // so far: body atoms live in strata ≤ s, attackers share the
        // victim's head atom and hence its stratum (their `blocked`
        // entries are initialised by the same loop).
        for f in lo..hi {
            ticker.tick()?;
            let z = f as usize;
            let mut blocked = false;
            let mut unsat = 0u32;
            for &b in fv.body(f) {
                if !definite {
                    blocked |= holds!(b.complement().code());
                }
                unsat += u32::from(!holds!(b.code()));
            }
            sc.blocked[z] = blocked;
            sc.unsat[z] = unsat;
        }
        if !definite {
            for f in lo..hi {
                let z = f as usize;
                sc.over[z] = fv
                    .overrulers(f)
                    .iter()
                    .filter(|&&a| !sc.blocked[a as usize])
                    .count() as u32;
                sc.defeat[z] = fv
                    .defeaters(f)
                    .iter()
                    .filter(|&&a| !sc.blocked[a as usize])
                    .count() as u32;
            }
        }
        for f in lo..hi {
            ticker.tick()?;
            try_fire!(f);
        }
        while let Some(lit) = sc.queue.pop() {
            ticker.tick()?;
            // Only rules of the current stratum can watch `lit` among
            // strata not yet evaluated; earlier strata are final and
            // later ones re-initialise when their turn comes, so the
            // range check is the entire stratum filter.
            for &w in fv.watchers(lit) {
                if w < lo || w >= hi {
                    continue;
                }
                sc.unsat[w as usize] -= 1;
                try_fire!(w);
            }
            if definite {
                continue;
            }
            for &w in fv.watchers(lit.complement()) {
                if w < lo || w >= hi || sc.blocked[w as usize] {
                    continue;
                }
                sc.blocked[w as usize] = true;
                // Victims share the attacker's head atom, hence the
                // stratum: no range check needed.
                for &v in fv.victims_overrule(w) {
                    sc.over[v as usize] -= 1;
                    try_fire!(v);
                }
                for &v in fv.victims_defeat(w) {
                    sc.defeat[v as usize] -= 1;
                    try_fire!(v);
                }
            }
        }
    }
    Ok(())
}

fn interp_of_bits(bits: &BitSet) -> Interpretation {
    Interpretation::from_literals(bits.iter().map(GLit::from_code))
        .expect("least fixpoint is consistent (Lemma 1)")
}

/// Least model of a flat view, sequentially (the flat counterpart of
/// [`crate::decomp::least_model_stratified`]; differentially tested
/// against it).
pub fn least_model_flat(fv: &FlatView) -> Interpretation {
    least_model_flat_budgeted(fv, &Budget::unlimited()).into_value()
}

/// [`least_model_flat`] under a [`Budget`]. On interruption the partial
/// result is every completed stratum plus a monotone prefix of the
/// current one — a sound under-approximation of the least model.
pub fn least_model_flat_budgeted(fv: &FlatView, budget: &Budget) -> Eval<Interpretation> {
    least_model_flat_cfg(fv, false, budget)
}

/// [`least_model_flat_budgeted`] for a view proved **negation-free**
/// (by `olp-analyze`'s program profile): skips all blockedness and
/// attack bookkeeping. Unsound — and differentially caught — if the
/// view actually contains negation; the caller owns the proof.
pub fn least_model_flat_definite(fv: &FlatView, budget: &Budget) -> Eval<Interpretation> {
    least_model_flat_cfg(fv, true, budget)
}

fn least_model_flat_cfg(fv: &FlatView, definite: bool, budget: &Budget) -> Eval<Interpretation> {
    let mut truth = BitSet::with_capacity(2 * fv.n_atoms);
    let mut sc = Scratch::new(fv.len());
    let mut ticker = budget.ticker();
    let res = eval_strata(
        fv,
        &|_| false,
        &mut truth,
        &mut sc,
        definite,
        0,
        fv.n_strata() as u32,
        &mut ticker,
    );
    drop(ticker);
    let i = interp_of_bits(&truth);
    match res {
        Ok(()) => Eval::Complete(i),
        Err(reason) => Eval::Interrupted(Interrupted { reason, partial: i }),
    }
}

/// Incremental least model over flat arenas: the compiled counterpart
/// of [`crate::decomp::least_model_delta`], differentially tested
/// against it and against from-scratch [`least_model_flat`].
///
/// `old` is the least model of this view before the mutation and
/// `touched` the sorted atom indices occurring in any changed rule —
/// head *and* body literals of every added or removed instance (the
/// set `olp_ground::GroundDelta::touched_atoms` computes). `fv` is the
/// view *after* the mutation: either freshly built or spliced by
/// `FlatView::apply_delta` — the algorithm only relies on the
/// invariants both constructions guarantee (topological stratum order,
/// rules sharing a head atom sharing a stratum).
///
/// **Dirty closure.** An atom is dirty if it is touched or if some
/// rule watching a dirty atom derives it: the reverse dependency walk
/// of `least_model_delta`, re-expressed over the packed watch lists
/// (`watchers(+a)` / `watchers(-a)` *are* the body→head reverse
/// adjacency, so no radjacency map is materialised). Attack edges need
/// no separate traversal — an attacker shares its victim's head atom,
/// so a change in the attacker's blockedness reaches the victim's atom
/// through the attacker's own body watches.
///
/// **Clean-bit copy.** A stratum none of whose head atoms is dirty is
/// *clean*: its rules are unchanged (a changed rule's head atom is
/// touched) and every literal they depend on is clean (a dirty body
/// atom would have dirtied the head through the watch list), so by
/// induction over the topological stratum order the old model's bits
/// for its head atoms are exact — they are copied verbatim, one budget
/// tick per rule. Dirty strata re-run the semi-naive worklist over
/// their contiguous rule ranges against the accumulated bits.
///
/// **Anytime contract.** Same as [`least_model_flat_budgeted`]: on
/// interruption the partial result is the copied clean bits plus every
/// completed dirty stratum plus a monotone prefix of the current one —
/// a sound under-approximation of the new least model.
pub fn least_model_delta_flat(
    fv: &FlatView,
    old: &Interpretation,
    touched: &[usize],
    budget: &Budget,
) -> Eval<Interpretation> {
    let n_atoms = fv.n_atoms;
    // Transitive dirty closure over the watch lists.
    let mut dirty = vec![false; n_atoms];
    let mut stack: Vec<u32> = Vec::new();
    for &a in touched {
        if a < n_atoms && !dirty[a] {
            dirty[a] = true;
            stack.push(a as u32);
        }
    }
    while let Some(a) = stack.pop() {
        let atom = AtomId(a);
        for l in [GLit::pos(atom), GLit::neg(atom)] {
            for &w in fv.watchers(l) {
                let h = fv.head(w).atom().index();
                if !dirty[h] {
                    dirty[h] = true;
                    stack.push(h as u32);
                }
            }
        }
    }

    let mut truth = BitSet::with_capacity(2 * n_atoms);
    let mut sc = Scratch::new(fv.len());
    let mut ticker = budget.ticker();
    let mut res = Ok(());
    'strata: for s in 0..fv.n_strata() {
        let (lo, hi) = fv.stratum(s);
        let is_dirty = (lo..hi).any(|f| dirty[fv.head(f).atom().index()]);
        if !is_dirty {
            for f in lo..hi {
                if let Err(r) = ticker.tick() {
                    res = Err(r);
                    break 'strata;
                }
                let h = fv.head(f).atom();
                for l in [GLit::pos(h), GLit::neg(h)] {
                    if old.holds(l) {
                        truth.insert(l.code());
                    }
                }
            }
        } else if let Err(r) = eval_strata(
            fv,
            &|_| false,
            &mut truth,
            &mut sc,
            false,
            s as u32,
            s as u32 + 1,
            &mut ticker,
        ) {
            res = Err(r);
            break 'strata;
        }
    }
    drop(ticker);
    let i = interp_of_bits(&truth);
    match res {
        Ok(()) => Eval::Complete(i),
        Err(reason) => Eval::Interrupted(Interrupted { reason, partial: i }),
    }
}

/// Tuning knobs of the morsel-driven parallel fixpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MorselCfg {
    /// Worker threads. `<= 1` always takes the sequential flat path.
    pub threads: usize,
    /// Target morsel weight (rules + body/attack edges; see
    /// [`FlatView::stratum_weight`]). Smaller morsels balance better,
    /// larger ones amortise publication; the default suits fixpoints of
    /// thousands of rules.
    pub target_weight: u64,
    /// Total program weight below which the evaluation stays
    /// sequential regardless of `threads` — spawning workers for a
    /// microsecond-scale fixpoint is a measured net loss (the
    /// `defeating_cliques` pathology).
    pub seq_threshold: u64,
    /// The caller proved the view negation-free (e.g. via
    /// `olp-analyze`'s program profile): skip blockedness and attack
    /// bookkeeping entirely. Unsound if the view contains negation.
    pub assume_definite: bool,
}

impl Default for MorselCfg {
    fn default() -> Self {
        MorselCfg {
            threads: 1,
            target_weight: 2048,
            seq_threshold: 4096,
            assume_definite: false,
        }
    }
}

impl MorselCfg {
    /// A config with `threads` workers and default sizing.
    pub fn with_threads(threads: usize) -> Self {
        MorselCfg {
            threads,
            ..MorselCfg::default()
        }
    }
}

/// Least model of a flat view under the morsel-driven work-stealing
/// scheduler. Byte-identical to [`least_model_flat`] at every thread
/// count (see the module docs for the argument); `threads <= 1` and
/// programs below [`MorselCfg::seq_threshold`] run the sequential path
/// verbatim.
pub fn least_model_morsel(fv: &FlatView, cfg: &MorselCfg, budget: &Budget) -> Eval<Interpretation> {
    let total: u64 = (0..fv.n_strata()).map(|s| fv.stratum_weight(s)).sum();
    if cfg.threads <= 1 || total < cfg.seq_threshold {
        return least_model_flat_cfg(fv, cfg.assume_definite, budget);
    }
    let morsels = fv.morsels(cfg.target_weight);
    if morsels.len() <= 1 {
        return least_model_flat_cfg(fv, cfg.assume_definite, budget);
    }
    least_model_morsel_definite(fv, &morsels, cfg.threads, cfg.assume_definite, budget)
}

/// The parallel scheduler proper, with no sequential fallback — exposed
/// so tests can force the work-stealing path on arbitrarily small
/// programs.
pub fn least_model_morsel_forced(
    fv: &FlatView,
    morsels: &[Morsel],
    threads: usize,
    budget: &Budget,
) -> Eval<Interpretation> {
    least_model_morsel_definite(fv, morsels, threads, false, budget)
}

fn least_model_morsel_definite(
    fv: &FlatView,
    morsels: &[Morsel],
    threads: usize,
    definite: bool,
    budget: &Budget,
) -> Eval<Interpretation> {
    use crossbeam::deque::{Injector, Steal, Worker};

    let nm = morsels.len();
    // Morsel-granularity dependency graph from the flat view's stratum
    // dependency edges.
    let mut morsel_of_stratum = vec![0u32; fv.n_strata()];
    for (mi, m) in morsels.iter().enumerate() {
        for s in m.stratum_lo..m.stratum_hi {
            morsel_of_stratum[s as usize] = mi as u32;
        }
    }
    let mut dependents: Vec<Vec<u32>> = vec![Vec::new(); nm];
    let mut indegree = vec![0usize; nm];
    let mut scratch: Vec<u32> = Vec::new();
    for (mi, m) in morsels.iter().enumerate() {
        scratch.clear();
        for s in m.stratum_lo..m.stratum_hi {
            for &p in fv.stratum_preds(s as usize) {
                let pm = morsel_of_stratum[p as usize];
                if pm != mi as u32 {
                    scratch.push(pm);
                }
            }
        }
        scratch.sort_unstable();
        scratch.dedup();
        indegree[mi] = scratch.len();
        for &pm in &scratch {
            dependents[pm as usize].push(mi as u32);
        }
    }
    let indegree: Vec<AtomicUsize> = indegree.into_iter().map(AtomicUsize::new).collect();

    let global = AtomicBitSet::new(2 * fv.n_atoms);
    let injector: Injector<u32> = Injector::new();
    for (mi, d) in indegree.iter().enumerate() {
        if d.load(Ordering::Relaxed) == 0 {
            injector.push(mi as u32);
        }
    }
    let remaining = AtomicUsize::new(nm);
    let stop = AtomicBool::new(false);
    let interrupted: Mutex<Option<InterruptReason>> = Mutex::new(None);

    let workers: Vec<Worker<u32>> = (0..threads).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<_> = workers.iter().map(Worker::stealer).collect();

    crossbeam::thread::scope(|scope| {
        for (wi, own) in workers.into_iter().enumerate() {
            let stealers = &stealers;
            let injector = &injector;
            let indegree = &indegree;
            let dependents = &dependents;
            let global = &global;
            let remaining = &remaining;
            let stop = &stop;
            let interrupted = &interrupted;
            scope.spawn(move |_| {
                let mut local = BitSet::with_capacity(2 * fv.n_atoms);
                let mut sc = Scratch::new(fv.len());
                loop {
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    let task = own.pop().or_else(|| {
                        injector.steal().success().or_else(|| {
                            // Rotate the steal order so workers don't
                            // all gang up on worker 0's deque.
                            (0..stealers.len())
                                .map(|k| (wi + 1 + k) % stealers.len())
                                .filter(|&v| v != wi)
                                .find_map(|v| match stealers[v].steal() {
                                    Steal::Success(t) => Some(t),
                                    _ => None,
                                })
                        })
                    });
                    let Some(mi) = task else {
                        if remaining.load(Ordering::Acquire) == 0 {
                            return;
                        }
                        std::thread::yield_now();
                        continue;
                    };
                    let m = &morsels[mi as usize];
                    local.clear();
                    let mut ticker = budget.ticker();
                    let res = eval_strata(
                        fv,
                        &|c| global.contains(c),
                        &mut local,
                        &mut sc,
                        definite,
                        m.stratum_lo,
                        m.stratum_hi,
                        &mut ticker,
                    );
                    drop(ticker); // refund unused credit: exact at morsel close
                                  // Publish even a partial morsel: every local bit was
                                  // derived by a fired rule whose (monotone) conditions
                                  // held — a sound prefix of the least fixpoint.
                    global.merge(&local);
                    match res {
                        Ok(()) => {
                            for &d in &dependents[mi as usize] {
                                // The AcqRel decrement orders the
                                // `Release` publication above before the
                                // releasee observes its last predecessor
                                // gone.
                                if indegree[d as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                                    own.push(d);
                                }
                            }
                            remaining.fetch_sub(1, Ordering::AcqRel);
                        }
                        Err(reason) => {
                            let mut slot = interrupted.lock().expect("interrupt slot");
                            slot.get_or_insert(reason);
                            stop.store(true, Ordering::Release);
                            return;
                        }
                    }
                }
            });
        }
    })
    .expect("morsel workers do not panic");

    let i = interp_of_bits(&global.snapshot());
    let reason = *interrupted.lock().expect("interrupt slot");
    match reason {
        None => Eval::Complete(i),
        Some(reason) => Eval::Interrupted(Interrupted { reason, partial: i }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olp_core::{CompId, World};
    use olp_ground::{ground_exhaustive, GroundConfig, GroundProgram};
    use olp_parser::parse_program;

    fn ground(src: &str) -> (World, GroundProgram) {
        let mut w = World::new();
        let p = parse_program(&mut w, src).unwrap();
        let g = ground_exhaustive(&mut w, &p, &GroundConfig::default()).unwrap();
        (w, g)
    }

    const FIG1: &str = "module c2 {
        bird(penguin). bird(pigeon).
        fly(X) :- bird(X).
        -ground_animal(X) :- bird(X).
     }
     module c1 < c2 {
        ground_animal(penguin).
        -fly(X) :- ground_animal(X).
     }";

    #[test]
    fn flat_matches_interpretive_on_examples() {
        for src in [
            FIG1,
            "module c3 { rich(mimmo). -poor(X) :- rich(X). }
             module c2 { poor(mimmo). -rich(X) :- poor(X). }
             module c1 < c2, c3 { free_ticket(X) :- poor(X). }",
            "a :- b. -a :- b. b.",
            "p. -p.",
            "module c2 { a. } module c1 < c2 { -a :- b. }",
        ] {
            let (_, g) = ground(src);
            for c in 0..g.order.len() {
                let c = CompId(c as u32);
                let view = View::new(&g, c);
                let fv = FlatView::new(&g, c);
                assert_eq!(
                    least_model_flat(&fv),
                    crate::decomp::least_model_stratified(&view),
                    "flat != interpretive on {src} in component {}",
                    c.0
                );
            }
        }
    }

    #[test]
    fn morsel_forced_matches_sequential() {
        let (_, g) = ground(FIG1);
        for c in 0..g.order.len() {
            let c = CompId(c as u32);
            let fv = FlatView::new(&g, c);
            let seq = least_model_flat(&fv);
            for threads in [2, 4, 8] {
                let morsels = fv.morsels(1); // one morsel per stratum
                let par = least_model_morsel_forced(&fv, &morsels, threads, &Budget::unlimited())
                    .expect_complete("unlimited budget");
                assert_eq!(seq, par, "threads={threads}");
            }
        }
    }

    #[test]
    fn definite_path_matches_general_on_positive_programs() {
        for src in [
            "p. q :- p. r :- q, p.",
            "edge(a,b). edge(b,c). edge(c,d). path(X,Y) :- edge(X,Y).
             path(X,Z) :- edge(X,Y), path(Y,Z).",
        ] {
            let (_, g) = ground(src);
            let fv = FlatView::new(&g, CompId(0));
            let general = least_model_flat(&fv);
            let definite =
                least_model_flat_definite(&fv, &Budget::unlimited()).expect_complete("unlimited");
            assert_eq!(general, definite, "{src}");
            let cfg = MorselCfg {
                threads: 4,
                target_weight: 1,
                seq_threshold: 0,
                assume_definite: true,
            };
            let par =
                least_model_morsel(&fv, &cfg, &Budget::unlimited()).expect_complete("unlimited");
            assert_eq!(general, par, "{src} (parallel)");
        }
    }

    #[test]
    fn small_programs_take_sequential_path() {
        let (_, g) = ground(FIG1);
        let fv = FlatView::new(&g, CompId(1));
        // Way below the threshold: must not spawn (observable only as
        // "still correct", but the code path is the seq fallback).
        let cfg = MorselCfg::with_threads(8);
        let m = least_model_morsel(&fv, &cfg, &Budget::unlimited()).expect_complete("unlimited");
        assert_eq!(m, least_model_flat(&fv));
    }

    #[test]
    fn budget_trip_leaves_sound_prefix() {
        let (_, g) = ground(FIG1);
        let fv = FlatView::new(&g, CompId(1));
        let full = least_model_flat(&fv);
        for steps in 0..12 {
            let eval = least_model_flat_budgeted(&fv, &Budget::with_steps(steps));
            if let Eval::Interrupted(i) = eval {
                for l in i.partial.literals() {
                    assert!(full.holds(l), "partial derived a non-model literal");
                }
            }
        }
    }

    /// Drives the full incremental pipeline between two groundings of
    /// the same world: diff → per-view patch (or honest rebuild) →
    /// `least_model_delta_flat`, checked against a from-scratch flat
    /// evaluation of the new program.
    fn check_delta_flat(old_gp: &GroundProgram, new_gp: &GroundProgram) {
        use olp_ground::{FlatPatch, FlatView, GroundDelta, GroundRule};
        let delta = GroundDelta::between(old_gp, new_gp);
        let touched = delta.touched_atoms(old_gp, new_gp);
        for c in 0..old_gp.order.len() {
            let c = CompId(c as u32);
            let fv_old = FlatView::new(old_gp, c);
            let old_model = least_model_flat(&fv_old);
            let (added, removed) = delta.for_view(old_gp, new_gp, c);
            let refs: Vec<&GroundRule> =
                removed.iter().map(|&i| &old_gp.rules[i as usize]).collect();
            let fv_new = match fv_old
                .locate(&refs)
                .map(|flat| fv_old.apply_delta(new_gp, &added, &flat))
            {
                Some(FlatPatch::Patched(p)) => p,
                _ => FlatView::new(new_gp, c),
            };
            let scratch = least_model_flat(&FlatView::new(new_gp, c));
            // The (possibly patched) arena evaluates identically from
            // scratch…
            assert_eq!(least_model_flat(&fv_new), scratch);
            // …and the delta evaluator reproduces it from the old
            // model plus the touched set.
            let inc = least_model_delta_flat(&fv_new, &old_model, &touched, &Budget::unlimited())
                .expect_complete("unlimited budget");
            assert_eq!(
                inc, scratch,
                "delta evaluation diverged in component {}",
                c.0
            );
        }
    }

    #[test]
    fn delta_flat_matches_scratch_after_mutations() {
        // Propositional programs with contested atoms so the dirty
        // closure crosses attack edges, not just positive deps.
        let base = "p. q :- p. -r :- q. r :- p. s :- r.";
        let mutations = [
            "p. q :- p. -r :- q. r :- p. s :- r. t :- s.", // fresh-atom tail
            "p. q :- p. -r :- q. r :- p. s :- r. q :- s.", // back edge → rebuild path
            "p. q :- p. r :- p. s :- r.",                  // retract -r :- q.
            "q :- p. -r :- q. r :- p. s :- r.",            // retract the fact p.
        ];
        for m in mutations {
            let mut w = World::new();
            let p1 = parse_program(&mut w, base).unwrap();
            let g1 = ground_exhaustive(&mut w, &p1, &GroundConfig::default()).unwrap();
            let p2 = parse_program(&mut w, m).unwrap();
            let g2 = ground_exhaustive(&mut w, &p2, &GroundConfig::default()).unwrap();
            check_delta_flat(&g1, &g2);
            check_delta_flat(&g2, &g1); // and the reverse mutation
        }
    }

    #[test]
    fn delta_flat_matches_scratch_with_variables() {
        let mut w = World::new();
        let p1 = parse_program(
            &mut w,
            "parent(a,b). anc(X,Y) :- parent(X,Y).
             anc(X,Y) :- parent(X,Z), anc(Z,Y).",
        )
        .unwrap();
        let g1 = ground_exhaustive(&mut w, &p1, &GroundConfig::default()).unwrap();
        let p2 = parse_program(
            &mut w,
            "parent(a,b). parent(b,c). anc(X,Y) :- parent(X,Y).
             anc(X,Y) :- parent(X,Z), anc(Z,Y).",
        )
        .unwrap();
        let g2 = ground_exhaustive(&mut w, &p2, &GroundConfig::default()).unwrap();
        check_delta_flat(&g1, &g2);
        check_delta_flat(&g2, &g1);
    }

    #[test]
    fn delta_flat_budget_trip_leaves_sound_prefix() {
        let mut w = World::new();
        let p1 = parse_program(&mut w, "p. q :- p. -r :- q. r :- p. s :- r.").unwrap();
        let g1 = ground_exhaustive(&mut w, &p1, &GroundConfig::default()).unwrap();
        let p2 = parse_program(&mut w, "p. q :- p. r :- p. s :- r. t :- s.").unwrap();
        let g2 = ground_exhaustive(&mut w, &p2, &GroundConfig::default()).unwrap();
        use olp_ground::GroundDelta;
        let delta = GroundDelta::between(&g1, &g2);
        let touched = delta.touched_atoms(&g1, &g2);
        let c = CompId(0);
        let old_model = least_model_flat(&FlatView::new(&g1, c));
        let fv = FlatView::new(&g2, c);
        let full = least_model_flat(&fv);
        for steps in 0..16 {
            let eval =
                least_model_delta_flat(&fv, &old_model, &touched, &Budget::with_steps(steps));
            if let Eval::Interrupted(i) = eval {
                for l in i.partial.literals() {
                    assert!(full.holds(l), "partial derived a non-model literal");
                }
            }
        }
    }

    #[test]
    fn flatten_matches_direct_construction() {
        let (_, g) = ground(FIG1);
        for c in 0..g.order.len() {
            let c = CompId(c as u32);
            let view = View::new(&g, c);
            let fv = flatten(&view);
            assert_eq!(fv.len(), view.len());
            assert_eq!(least_model_flat(&fv), crate::fixpoint::least_model(&view));
        }
    }
}
