//! The ordered immediate transformation `V_{P,C}` and its least
//! fixpoint (Definition 4, Lemma 1, Proposition 1, Theorem 1b).
//!
//! `V_{P,C}(I) = { H(r) | r ∈ ground(C*), B(r) ⊆ I, r neither overruled
//! nor defeated w.r.t. I }`. The transformation is monotone (growing `I`
//! can only satisfy more bodies and *block* more attackers — attacks
//! only ever weaken), so the least fixpoint exists and equals the limit
//! of `V^k(∅)`.
//!
//! Three engines:
//! * [`v_step`] / [`least_model_naive`] — a literal transcription of the
//!   definition: full passes until nothing changes. Reference + ablation
//!   baseline.
//! * [`least_model_monolithic`] — incremental worklist engine: per-rule
//!   counters of unsatisfied body literals and of still-active
//!   (non-blocked) overrulers/defeaters; deriving a literal decrements
//!   counters via the view's body index and transposed attack lists.
//!   Each rule/literal is touched O(1) times per edge, so the fixpoint
//!   is linear in the size of the ground view.
//! * [`least_model`] — the default: the same worklist run
//!   stratum-by-stratum over the SCC condensation of the dependency
//!   graph ([`crate::decomp`]), which confines counters and queue to one
//!   stratum at a time.

use crate::view::View;
use olp_core::{Budget, Eval, Interpretation, Interrupted};

/// One application of `V_{P,C}` to `i`.
///
/// Returns the *new* interpretation `V(i)` (not the union — `V` is not
/// inflationary in general, but its iterates from `∅` are increasing).
pub fn v_step(view: &View, i: &Interpretation) -> Interpretation {
    let mut out = Interpretation::new();
    for (li, r) in view.rules() {
        if view.applicable(li, i) && !view.overruled(li, i) && !view.defeated(li, i) {
            out.insert(r.head)
                .expect("V preserves consistency (Lemma 1)");
        }
    }
    out
}

/// Least fixpoint of `V_{P,C}` by naive iteration from `∅`.
pub fn least_model_naive(view: &View) -> Interpretation {
    least_model_naive_budgeted(view, &Budget::unlimited()).into_value()
}

/// [`least_model_naive`] under a [`Budget`].
///
/// On interruption the partial result is the **last completed
/// iterate** `V^k(∅)`. The iterates from `∅` are increasing (Lemma 1),
/// so that iterate is a sound under-approximation of the least model.
pub fn least_model_naive_budgeted(view: &View, budget: &Budget) -> Eval<Interpretation> {
    let mut cur = Interpretation::new();
    let mut ticker = budget.ticker();
    loop {
        let mut out = Interpretation::new();
        for (li, r) in view.rules() {
            if let Err(reason) = ticker.tick() {
                return Eval::Interrupted(Interrupted {
                    reason,
                    partial: cur,
                });
            }
            if view.applicable(li, &cur) && !view.overruled(li, &cur) && !view.defeated(li, &cur) {
                out.insert(r.head)
                    .expect("V preserves consistency (Lemma 1)");
            }
        }
        if out == cur {
            return Eval::Complete(cur);
        }
        cur = out;
    }
}

/// Least fixpoint of `V_{P,C}` by incremental worklist iteration.
///
/// By Theorem 1(b) this is the **least model** of the program in the
/// component, the intersection of all models, and is assumption-free.
///
/// Evaluation compiles the view into the **flat arena representation**
/// ([`olp_ground::flat`]) and runs the stratified worklist over dense
/// bitset truth state ([`crate::flat_eval`]) — no hashing in the inner
/// loop. Use [`crate::decomp::least_model_stratified`] for the
/// interpretive stratified engine or [`least_model_monolithic`] to also
/// skip the condensation (the `--no-decomp` escape hatch); all three
/// are differentially tested against each other.
pub fn least_model(view: &View) -> Interpretation {
    crate::flat_eval::least_model_flat(&crate::flat_eval::flatten(view))
}

/// [`least_model`] under a [`Budget`].
///
/// On interruption the partial result is every completed stratum in
/// full plus a monotone prefix of the current one — always a subset of
/// the unbudgeted least model.
pub fn least_model_budgeted(view: &View, budget: &Budget) -> Eval<Interpretation> {
    crate::flat_eval::least_model_flat_budgeted(&crate::flat_eval::flatten(view), budget)
}

/// [`least_model`] with the morsel-driven work-stealing scheduler
/// ([`crate::flat_eval::least_model_morsel`]): size-balanced runs of
/// strata are scheduled over `threads` workers with per-worker deques
/// and no global round barrier. The result is byte-identical to
/// [`least_model`] for every thread count; `threads <= 1` and small
/// programs take the sequential flat path verbatim.
pub fn least_model_parallel(view: &View, threads: usize) -> Interpretation {
    least_model_parallel_budgeted(view, threads, &Budget::unlimited()).into_value()
}

/// [`least_model_parallel`] under a [`Budget`].
///
/// Same anytime contract as [`least_model_budgeted`]: the partial
/// result is the union of every published morsel plus monotone
/// prefixes of the morsels in flight — always a subset of the
/// unbudgeted least model. Step accounting stays exact at morsel
/// boundaries (each morsel runs under its own refunding ticker).
pub fn least_model_parallel_budgeted(
    view: &View,
    threads: usize,
    budget: &Budget,
) -> Eval<Interpretation> {
    let fv = crate::flat_eval::flatten(view);
    let cfg = crate::flat_eval::MorselCfg::with_threads(threads);
    crate::flat_eval::least_model_morsel(&fv, &cfg, budget)
}

/// Least fixpoint of `V_{P,C}` by a single monolithic worklist, without
/// the stratified decomposition. Kept as the `--no-decomp` escape hatch
/// and the differential-testing baseline for [`least_model`].
pub fn least_model_monolithic(view: &View) -> Interpretation {
    least_model_impl(view, None, &Budget::unlimited()).into_value()
}

/// [`least_model_monolithic`] under a [`Budget`].
///
/// On interruption the partial result contains only literals already
/// derived by fired rules, i.e. a prefix of the monotone worklist
/// closure — always a subset of the unbudgeted least model.
pub fn least_model_monolithic_budgeted(view: &View, budget: &Budget) -> Eval<Interpretation> {
    least_model_impl(view, None, budget)
}

/// [`least_model`] restricted to the rules where `mask` is `true` —
/// rules outside the mask neither fire nor attack. Used by the
/// goal-directed prover ([`crate::prove::prove`]), which guarantees the mask
/// is closed under derivation/blocking/attack dependencies.
pub fn least_model_restricted(view: &View, mask: &[bool]) -> Interpretation {
    least_model_impl(view, Some(mask), &Budget::unlimited()).into_value()
}

/// [`least_model_restricted`] under a [`Budget`] (same partial-result
/// guarantee as [`least_model_budgeted`], relative to the masked
/// program).
pub fn least_model_restricted_budgeted(
    view: &View,
    mask: &[bool],
    budget: &Budget,
) -> Eval<Interpretation> {
    least_model_impl(view, Some(mask), budget)
}

fn least_model_impl(view: &View, mask: Option<&[bool]>, budget: &Budget) -> Eval<Interpretation> {
    let n = view.len();
    let enabled = |li: u32| mask.is_none_or(|m| m[li as usize]);
    let mut unsat = vec![0u32; n];
    let mut over = vec![0u32; n];
    let mut defeat = vec![0u32; n];
    let mut blocked = vec![false; n];
    let mut fired = vec![false; n];

    for (li, r) in view.rules() {
        unsat[li as usize] = r.body.len() as u32;
        over[li as usize] = view.overrulers(li).iter().filter(|&&a| enabled(a)).count() as u32;
        defeat[li as usize] = view.defeaters(li).iter().filter(|&&a| enabled(a)).count() as u32;
    }

    let mut i = Interpretation::new();
    let mut queue: Vec<olp_core::GLit> = Vec::new();
    let mut interrupted = None;
    let mut ticker = budget.ticker();

    // Seed: rules with empty bodies and no attackers at all.
    for (li, r) in view.rules() {
        if let Err(reason) = ticker.tick() {
            interrupted = Some(reason);
            break;
        }
        let l = li as usize;
        if enabled(li) && unsat[l] == 0 && over[l] == 0 && defeat[l] == 0 && !fired[l] {
            fired[l] = true;
            if i.insert(r.head).expect("V preserves consistency") {
                queue.push(r.head);
            }
        }
    }

    'work: while interrupted.is_none() {
        let Some(lit) = queue.pop() else { break };
        if let Err(reason) = ticker.tick() {
            interrupted = Some(reason);
            break 'work;
        }
        // 1. Body satisfaction: rules with `lit` in the body get closer
        //    to applicability.
        for &li in view.rules_with_body_lit(lit) {
            let l = li as usize;
            unsat[l] -= 1;
            if enabled(li) && unsat[l] == 0 && over[l] == 0 && defeat[l] == 0 && !fired[l] {
                fired[l] = true;
                let head = view.rule(li).head;
                if i.insert(head).expect("V preserves consistency") {
                    queue.push(head);
                }
            }
        }
        // 2. Blocking: rules with the *complement* of `lit` in the body
        //    become blocked; their victims lose an active attacker.
        for &li in view.rules_with_body_lit(lit.complement()) {
            let l = li as usize;
            if blocked[l] {
                continue;
            }
            if let Err(reason) = ticker.tick() {
                interrupted = Some(reason);
                break 'work;
            }
            blocked[l] = true;
            if !enabled(li) {
                continue;
            }
            for &v in view.victims_overrule(li) {
                let vz = v as usize;
                over[vz] -= 1;
                if enabled(v) && unsat[vz] == 0 && over[vz] == 0 && defeat[vz] == 0 && !fired[vz] {
                    fired[vz] = true;
                    let head = view.rule(v).head;
                    if i.insert(head).expect("V preserves consistency") {
                        queue.push(head);
                    }
                }
            }
            for &v in view.victims_defeat(li) {
                let vz = v as usize;
                defeat[vz] -= 1;
                if enabled(v) && unsat[vz] == 0 && over[vz] == 0 && defeat[vz] == 0 && !fired[vz] {
                    fired[vz] = true;
                    let head = view.rule(v).head;
                    if i.insert(head).expect("V preserves consistency") {
                        queue.push(head);
                    }
                }
            }
        }
    }
    // Every inserted literal was derived by a fired rule whose body
    // held and whose attackers were blocked at fire time — conditions
    // monotone in `i` — so `i` is a prefix of the increasing worklist
    // closure and a sound under-approximation of the least model.
    match interrupted {
        None => Eval::Complete(i),
        Some(reason) => Eval::Interrupted(Interrupted { reason, partial: i }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olp_core::{CompId, World};
    use olp_ground::{ground_exhaustive, GroundConfig, GroundProgram};
    use olp_parser::{parse_ground_literal, parse_program};

    fn ground(src: &str) -> (World, GroundProgram) {
        let mut w = World::new();
        let p = parse_program(&mut w, src).unwrap();
        let g = ground_exhaustive(&mut w, &p, &GroundConfig::default()).unwrap();
        (w, g)
    }

    fn expect_model(w: &mut World, m: &Interpretation, lits: &[&str], n_atoms: usize) {
        let want =
            Interpretation::from_literals(lits.iter().map(|s| parse_ground_literal(w, s).unwrap()))
                .unwrap();
        assert_eq!(
            m.render(w),
            want.render(w),
            "least model mismatch (n_atoms = {n_atoms})"
        );
    }

    const FIG1: &str = "module c2 {
        bird(penguin). bird(pigeon).
        fly(X) :- bird(X).
        -ground_animal(X) :- bird(X).
     }
     module c1 < c2 {
        ground_animal(penguin).
        -fly(X) :- ground_animal(X).
     }";

    #[test]
    fn fig1_least_model_in_c1_is_i1() {
        // The penguin does not fly in C1 (overruling); the pigeon does.
        let (mut w, g) = ground(FIG1);
        let v = View::new(&g, CompId(1)); // c1
        let m = least_model(&v);
        expect_model(
            &mut w,
            &m,
            &[
                "bird(penguin)",
                "bird(pigeon)",
                "ground_animal(penguin)",
                "-ground_animal(pigeon)",
                "fly(pigeon)",
                "-fly(penguin)",
            ],
            g.n_atoms,
        );
        assert!(m.is_total(g.n_atoms));
    }

    #[test]
    fn fig1_least_model_in_c2_has_flying_penguin() {
        // From C2's point of view the penguin flies: C1's exception is
        // invisible above.
        let (mut w, g) = ground(FIG1);
        let v = View::new(&g, CompId(0)); // c2
        let m = least_model(&v);
        expect_model(
            &mut w,
            &m,
            &[
                "bird(penguin)",
                "bird(pigeon)",
                "-ground_animal(penguin)",
                "-ground_animal(pigeon)",
                "fly(pigeon)",
                "fly(penguin)",
            ],
            g.n_atoms,
        );
    }

    #[test]
    fn collapsed_fig1_defeats_instead() {
        // P̂1 (Example 3): the least model leaves fly(penguin) and
        // ground_animal(penguin) undefined.
        let (mut w, g) = ground(
            "bird(penguin). bird(pigeon).
             fly(X) :- bird(X).
             -ground_animal(X) :- bird(X).
             ground_animal(penguin).
             -fly(X) :- ground_animal(X).",
        );
        let v = View::new(&g, CompId(0));
        let m = least_model(&v);
        expect_model(
            &mut w,
            &m,
            &[
                "bird(penguin)",
                "bird(pigeon)",
                "-ground_animal(pigeon)",
                "fly(pigeon)",
            ],
            g.n_atoms,
        );
        let fp = parse_ground_literal(&mut w, "fly(penguin)").unwrap();
        assert!(!m.holds(fp) && !m.holds(fp.complement()));
    }

    #[test]
    fn fig2_defeating_gives_empty_model_in_c1() {
        // P2 (Fig. 2): C3 and C2 are incomparable from C1; rich/poor
        // defeat each other, so nothing about mimmo is derivable.
        let (_, g) = ground(
            "module c3 { rich(mimmo). -poor(X) :- rich(X). }
             module c2 { poor(mimmo). -rich(X) :- poor(X). }
             module c1 < c2, c3 { free_ticket(X) :- poor(X). }",
        );
        let c1 = CompId(2);
        let v = View::new(&g, c1);
        let m = least_model(&v);
        assert!(m.is_empty(), "got {:?}", m.len());
    }

    #[test]
    fn fig2_component_views_differ() {
        let (mut w, g) = ground(
            "module c3 { rich(mimmo). -poor(X) :- rich(X). }
             module c2 { poor(mimmo). -rich(X) :- poor(X). }
             module c1 < c2, c3 { free_ticket(X) :- poor(X). }",
        );
        // In C3's own view, mimmo is rich and not poor.
        let m3 = least_model(&View::new(&g, CompId(0)));
        expect_model(&mut w, &m3, &["rich(mimmo)", "-poor(mimmo)"], g.n_atoms);
        // In C2's own view, mimmo is poor and not rich.
        let m2 = least_model(&View::new(&g, CompId(1)));
        expect_model(&mut w, &m2, &["poor(mimmo)", "-rich(mimmo)"], g.n_atoms);
    }

    #[test]
    fn naive_and_incremental_agree_on_examples() {
        for src in [
            FIG1,
            "module c3 { rich(mimmo). -poor(X) :- rich(X). }
             module c2 { poor(mimmo). -rich(X) :- poor(X). }
             module c1 < c2, c3 { free_ticket(X) :- poor(X). }",
            "a :- b. -a :- b. b.",
            "module c2 { a. b. c. }
             module c1 < c2 { -a :- b, c. -b :- a. -b :- -b. }",
        ] {
            let (_, g) = ground(src);
            for c in 0..g.order.len() {
                let v = View::new(&g, CompId(c as u32));
                assert_eq!(
                    least_model(&v),
                    least_model_naive(&v),
                    "engines disagree on {src} in component {c}"
                );
            }
        }
    }

    #[test]
    fn eternal_attacker_blocks_derivation() {
        // `a.` in upper component, `-a :- b.` in lower with b never
        // derivable: `a` must NOT be in the least model of the lower
        // component (the non-blocked lower rule overrules it), but IS in
        // the upper component's own view.
        let (mut w, g) = ground(
            "module c2 { a. }
             module c1 < c2 { -a :- b. }",
        );
        let a = parse_ground_literal(&mut w, "a").unwrap();
        let m_upper = least_model(&View::new(&g, CompId(0)));
        assert!(m_upper.holds(a));
        let m_lower = least_model(&View::new(&g, CompId(1)));
        assert!(!m_lower.holds(a));
        assert!(m_lower.is_empty());
    }

    #[test]
    fn loan_program_scenarios() {
        // Fig. 3 with the three §1 scenarios.
        let base = "module expert2 { take_loan :- inflation(X), X > 11. }
             module expert4 { -take_loan :- loan_rate(X), X > 14. }
             module expert3 < expert4 {
                take_loan :- inflation(X), loan_rate(Y), X > Y + 2.
             }
             module myself < expert2, expert3 { %FACTS% }";

        let check = |facts: &str| -> (World, Option<bool>) {
            let src = base.replace("%FACTS%", facts);
            let (mut w, g) = ground(&src);
            let myself = CompId(3);
            let m = least_model(&View::new(&g, myself));
            let tl = parse_ground_literal(&mut w, "take_loan").unwrap();
            let val = if m.holds(tl) {
                Some(true)
            } else if m.holds(tl.complement()) {
                Some(false)
            } else {
                None
            };
            (w, val)
        };

        // Scenario 0: no facts — nothing derivable.
        assert_eq!(check("").1, None);
        // Scenario 1: inflation(12) — expert2 fires, take_loan true.
        assert_eq!(check("inflation(12).").1, Some(true));
        // Scenario 2: inflation(12), loan_rate(16) — expert2 vs expert4
        // defeat each other; undefined.
        assert_eq!(check("inflation(12). loan_rate(16).").1, None);
        // Scenario 3: inflation(19), loan_rate(16) — expert3 overrules
        // expert4; take_loan true.
        assert_eq!(check("inflation(19). loan_rate(16).").1, Some(true));
    }

    #[test]
    fn p3_least_model_is_empty() {
        // Example 3 tail: { a :- b.  -a :- b. } has least model ∅.
        let (_, g) = ground("a :- b. -a :- b.");
        let m = least_model(&View::new(&g, CompId(0)));
        assert!(m.is_empty());
    }

    #[test]
    fn example4_two_components_cwa() {
        // P4 extended (Example 4): adding a component C2 above with
        // facts -a., -b. makes {-a, -b} the least (assumption-free)
        // model of C1's view.
        let (mut w, g) = ground(
            "module c2 { -a. -b. }
             module c1 < c2 { a :- b. }",
        );
        let m = least_model(&View::new(&g, CompId(1)));
        expect_model(&mut w, &m, &["-a", "-b"], g.n_atoms);
    }

    #[test]
    fn self_defeating_fact_pair() {
        // p. and -p. in one component: mutual defeat, nothing derived.
        let (_, g) = ground("p. -p.");
        let m = least_model(&View::new(&g, CompId(0)));
        assert!(m.is_empty());
    }

    #[test]
    fn lower_fact_beats_upper_fact() {
        let (mut w, g) = ground("module low < high { p. } module high { -p. }");
        let low = CompId(0);
        let m = least_model(&View::new(&g, low));
        let p = parse_ground_literal(&mut w, "p").unwrap();
        assert!(m.holds(p));
        assert!(!m.holds(p.complement()));
    }
}
