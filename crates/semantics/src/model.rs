//! Models of an ordered program in a component (Definition 3).
//!
//! `M` is a model iff:
//!
//! * **(a)** for each literal `A ∈ M`, every rule with head `¬A` is
//!   blocked or overruled **by an applied rule** — the truth of `A`
//!   either cannot be contradicted, or every contradiction is
//!   re-confirmed by a more specific applied rule;
//! * **(b)** for each undefined atom, every *applicable* rule deriving
//!   either sign of it is overruled or defeated — a value may stay
//!   undefined only when its derivations are suppressed.

use crate::view::View;
use olp_core::Interpretation;
use olp_core::{AtomId, GLit, Sign};

/// Checks Definition 3 for `m` in the component of `view`.
///
/// `n_atoms` bounds the atom universe (use
/// [`olp_ground::GroundProgram::n_atoms`]).
pub fn is_model(view: &View, m: &Interpretation, n_atoms: usize) -> bool {
    // (a) every literal in M is uncontradicted or re-confirmed.
    for lit in m.literals() {
        for &li in view.rules_with_head(lit.complement()) {
            if !view.blocked(li, m) && !view.overruled_by_applied(li, m) {
                return false;
            }
        }
    }
    // (b) undefined atoms have all their applicable derivations
    // suppressed.
    for atom in m.undefined_atoms(n_atoms) {
        for sign in [Sign::Pos, Sign::Neg] {
            let h = GLit::new(sign, atom);
            for &li in view.rules_with_head(h) {
                if view.applicable(li, m) && !view.overruled(li, m) && !view.defeated(li, m) {
                    return false;
                }
            }
        }
    }
    true
}

/// Result of diagnosing why an interpretation is not a model; useful in
/// error messages and the experiments binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelViolation {
    /// Condition (a) fails: this literal is in `M` but the given rule
    /// with the complementary head is neither blocked nor overruled by
    /// an applied rule.
    Contradicted {
        /// The literal in `M`.
        lit: GLit,
        /// The offending rule (local index in the view).
        rule: u32,
    },
    /// Condition (b) fails: this atom is undefined but the given rule is
    /// applicable and neither overruled nor defeated.
    Underivable {
        /// The undefined atom.
        atom: AtomId,
        /// The offending rule (local index in the view).
        rule: u32,
    },
}

/// Like [`is_model`] but returns the first violation found.
pub fn check_model(view: &View, m: &Interpretation, n_atoms: usize) -> Result<(), ModelViolation> {
    for lit in m.literals() {
        for &li in view.rules_with_head(lit.complement()) {
            if !view.blocked(li, m) && !view.overruled_by_applied(li, m) {
                return Err(ModelViolation::Contradicted { lit, rule: li });
            }
        }
    }
    for atom in m.undefined_atoms(n_atoms) {
        for sign in [Sign::Pos, Sign::Neg] {
            for &li in view.rules_with_head(GLit::new(sign, atom)) {
                if view.applicable(li, m) && !view.overruled(li, m) && !view.defeated(li, m) {
                    return Err(ModelViolation::Underivable { atom, rule: li });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use olp_core::{CompId, World};
    use olp_ground::{ground_exhaustive, GroundConfig, GroundProgram};
    use olp_parser::{parse_ground_literal, parse_program};

    fn ground(src: &str) -> (World, GroundProgram) {
        let mut w = World::new();
        let p = parse_program(&mut w, src).unwrap();
        let g = ground_exhaustive(&mut w, &p, &GroundConfig::default()).unwrap();
        (w, g)
    }

    fn interp(w: &mut World, lits: &[&str]) -> Interpretation {
        Interpretation::from_literals(lits.iter().map(|s| parse_ground_literal(w, s).unwrap()))
            .unwrap()
    }

    const FIG1: &str = "module c2 {
        bird(penguin). bird(pigeon).
        fly(X) :- bird(X).
        -ground_animal(X) :- bird(X).
     }
     module c1 < c2 {
        ground_animal(penguin).
        -fly(X) :- ground_animal(X).
     }";

    #[test]
    fn example3_i1_is_model_for_p1_in_c1() {
        let (mut w, g) = ground(FIG1);
        let v = View::new(&g, CompId(1));
        let i1 = interp(
            &mut w,
            &[
                "bird(pigeon)",
                "bird(penguin)",
                "ground_animal(penguin)",
                "-ground_animal(pigeon)",
                "fly(pigeon)",
                "-fly(penguin)",
            ],
        );
        assert!(is_model(&v, &i1, g.n_atoms));
        assert!(check_model(&v, &i1, g.n_atoms).is_ok());
    }

    #[test]
    fn example3_i1_is_not_model_for_collapsed_program() {
        // "On the other side, I1 is not a model for P̂1 in C."
        let (mut w, g) = ground(
            "bird(penguin). bird(pigeon).
             fly(X) :- bird(X).
             -ground_animal(X) :- bird(X).
             ground_animal(penguin).
             -fly(X) :- ground_animal(X).",
        );
        let v = View::new(&g, CompId(0));
        let i1 = interp(
            &mut w,
            &[
                "bird(pigeon)",
                "bird(penguin)",
                "ground_animal(penguin)",
                "-ground_animal(pigeon)",
                "fly(pigeon)",
                "-fly(penguin)",
            ],
        );
        assert!(!is_model(&v, &i1, g.n_atoms));
        // The collapsed model of Example 3 instead:
        let i1_hat = interp(
            &mut w,
            &[
                "bird(pigeon)",
                "bird(penguin)",
                "fly(pigeon)",
                "-ground_animal(pigeon)",
            ],
        );
        assert!(is_model(&v, &i1_hat, g.n_atoms));
    }

    #[test]
    fn example2_i2_is_not_a_model_of_p2_in_c1() {
        // I2 = {rich(mimmo), poor(mimmo)} — wait, I2 in the paper is
        // inconsistent-looking but it is {rich(mimmo), poor(mimmo)}
        // (both positive: consistent). It is an interpretation but NOT a
        // model.
        let (mut w, g) = ground(
            "module c3 { rich(mimmo). -poor(X) :- rich(X). }
             module c2 { poor(mimmo). -rich(X) :- poor(X). }
             module c1 < c2, c3 { free_ticket(X) :- poor(X). }",
        );
        let v = View::new(&g, CompId(2));
        let i2 = interp(&mut w, &["rich(mimmo)", "poor(mimmo)"]);
        assert!(!is_model(&v, &i2, g.n_atoms));
        // The empty interpretation IS a model for P2 in C1.
        let empty = Interpretation::new();
        assert!(is_model(&v, &empty, g.n_atoms));
    }

    #[test]
    fn example3_p3_model_list_exact() {
        // P3 = { a :- b.  -a :- b. }: models are exactly
        // {b}, {-b}, {a,-b}, {-a,-b} and {} among all interpretations.
        let (mut w, g) = ground("a :- b. -a :- b.");
        let v = View::new(&g, CompId(0));
        let a = parse_ground_literal(&mut w, "a").unwrap();
        let b = parse_ground_literal(&mut w, "b").unwrap();
        let mut models = Vec::new();
        for av in [None, Some(true), Some(false)] {
            for bv in [None, Some(true), Some(false)] {
                let mut i = Interpretation::new();
                if let Some(t) = av {
                    i.insert(if t { a } else { a.complement() }).unwrap();
                }
                if let Some(t) = bv {
                    i.insert(if t { b } else { b.complement() }).unwrap();
                }
                if is_model(&v, &i, g.n_atoms) {
                    models.push(i.render(&w));
                }
            }
        }
        models.sort();
        let mut expected = vec![
            "{}".to_string(),
            "{b}".to_string(),
            "{-b}".to_string(),
            "{-b, a}".to_string(),
            "{-a, -b}".to_string(),
        ];
        expected.sort();
        assert_eq!(models, expected);
        // In particular the Herbrand base {a, b} is NOT a model.
    }

    #[test]
    fn least_fixpoint_is_always_a_model() {
        // Proposition 1 spot-check on several programs/components.
        use crate::fixpoint::least_model;
        for src in [
            FIG1,
            "a :- b. -a :- b.",
            "p. -p.",
            "module c2 { a. b. c. } module c1 < c2 { -a :- b, c. -b :- a. }",
        ] {
            let (_, g) = ground(src);
            for c in 0..g.order.len() {
                let v = View::new(&g, CompId(c as u32));
                let m = least_model(&v);
                assert!(is_model(&v, &m, g.n_atoms), "lfp not a model for {src}");
            }
        }
    }

    #[test]
    fn violation_diagnostics() {
        let (mut w, g) = ground("a.");
        let v = View::new(&g, CompId(0));
        let empty = Interpretation::new();
        // `a.` applicable, unattacked, head undefined → (b) violated.
        assert!(matches!(
            check_model(&v, &empty, g.n_atoms),
            Err(ModelViolation::Underivable { .. })
        ));
        // {-a} has the fact `a.` contradicting it, unblocked and not
        // overruled → (a) violated.
        let na = interp(&mut w, &["-a"]);
        assert!(matches!(
            check_model(&v, &na, g.n_atoms),
            Err(ModelViolation::Contradicted { .. })
        ));
    }
}
