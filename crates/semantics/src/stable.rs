//! Model enumeration and stable models (Definitions 5, 9; Example 5;
//! Proposition 2).
//!
//! A **stable model** is a maximal assumption-free model. Deciding
//! stability is intractable in general (it generalises
//! Gelfond–Lifschitz stable models, Corollary 1), so enumeration is an
//! exact backtracking search:
//!
//! * assumption-free enumeration branches only over atoms that are
//!   *derivable at all* — the closure `D` of the rules ignoring
//!   statuses bounds every assumption-free model, which prunes the
//!   3-valued search space hard;
//! * arbitrary-model enumeration (needed for exhaustive models and for
//!   validating Prop. 2 on small programs) branches over the whole atom
//!   universe and is meant for small `n` only.

use crate::assumption::is_assumption_free;
use crate::model::is_model;
use crate::view::View;
use olp_core::Interpretation;
use olp_core::{AtomId, Budget, Eval, FxHashSet, GLit, InterruptReason, Interrupted};

/// Enumerates every assumption-free model of the view.
///
/// Exact but exponential in the number of derivable atoms; intended for
/// programs whose *contested* part is small (the paper's examples, the
/// benchmark generators). The result always contains the least model.
pub fn enumerate_assumption_free(view: &View, n_atoms: usize) -> Vec<Interpretation> {
    enumerate_assumption_free_budgeted(view, n_atoms, &Budget::unlimited(), None).into_value()
}

/// [`enumerate_assumption_free`] under a [`Budget`], optionally capped
/// at `max_models` results.
///
/// **Anytime guarantee:** every interpretation in a partial result
/// passed the exact leaf checks (model + assumption-free), so the
/// partial list is always a subset of the unbudgeted enumeration —
/// just possibly incomplete.
pub fn enumerate_assumption_free_budgeted(
    view: &View,
    _n_atoms: usize,
    budget: &Budget,
    max_models: Option<usize>,
) -> Eval<Vec<Interpretation>> {
    let d = match derivability_closure_budgeted(view, budget) {
        Ok(d) => d,
        Err(reason) => {
            return Eval::Interrupted(Interrupted {
                reason,
                partial: Vec::new(),
            })
        }
    };

    // Branch atoms: atoms derivable in at least one sign; per-atom
    // candidate values derived from which signs are derivable.
    let mut atoms: Vec<AtomId> = d
        .iter()
        .map(|l| l.atom())
        .collect::<FxHashSet<_>>()
        .into_iter()
        .collect();
    atoms.sort_unstable();

    let mut out = Vec::new();
    let mut cur = Interpretation::new();
    let cap = max_models.unwrap_or(usize::MAX);
    match search_af(view, &d, &atoms, 0, &mut cur, &mut out, budget, cap) {
        Ok(()) => Eval::Complete(out),
        Err(reason) => Eval::Interrupted(Interrupted {
            reason,
            partial: out,
        }),
    }
}

/// The derivability closure `D` of a view: the `T`-fixpoint of all its
/// rules with statuses ignored. Every assumption-free model is `⊆ D`
/// (its literals are heads of applied rules whose bodies are again in
/// the model, inductively grounding out in facts). Unlike
/// [`crate::assumption::t_fixpoint`] it tolerates complementary heads —
/// it is a *bound*, not an interpretation.
pub fn derivability_closure(view: &View) -> FxHashSet<GLit> {
    derivability_closure_budgeted(view, &Budget::unlimited())
        .expect("unlimited budget cannot interrupt")
}

pub(crate) fn derivability_closure_budgeted(
    view: &View,
    budget: &Budget,
) -> Result<FxHashSet<GLit>, InterruptReason> {
    let all_rules: Vec<(GLit, Box<[GLit]>)> = view
        .rules()
        .map(|(_, r)| (r.head, r.body.clone()))
        .collect();
    t_closure_both_signs(&all_rules, budget)
}

fn t_closure_both_signs(
    rules: &[(GLit, Box<[GLit]>)],
    budget: &Budget,
) -> Result<FxHashSet<GLit>, InterruptReason> {
    let mut d: FxHashSet<GLit> = FxHashSet::default();
    loop {
        let mut changed = false;
        for (head, body) in rules {
            budget.tick()?;
            if !d.contains(head) && body.iter().all(|b| d.contains(b)) {
                d.insert(*head);
                changed = true;
            }
        }
        if !changed {
            return Ok(d);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn search_af(
    view: &View,
    d: &FxHashSet<GLit>,
    atoms: &[AtomId],
    at: usize,
    cur: &mut Interpretation,
    out: &mut Vec<Interpretation>,
    budget: &Budget,
    cap: usize,
) -> Result<(), InterruptReason> {
    budget.tick()?;
    if at == atoms.len() {
        if is_model_for_af_search(view, cur) && is_assumption_free(view, cur) {
            out.push(cur.clone());
            if out.len() >= cap {
                return Err(InterruptReason::ModelCap);
            }
        }
        return Ok(());
    }
    let a = atoms[at];
    // Undefined branch.
    search_af(view, d, atoms, at + 1, cur, out, budget, cap)?;
    // True branch (only if the positive literal is derivable).
    if d.contains(&GLit::pos(a)) {
        cur.insert(GLit::pos(a)).expect("fresh atom");
        let r = search_af(view, d, atoms, at + 1, cur, out, budget, cap);
        cur.remove(GLit::pos(a));
        r?;
    }
    // False branch.
    if d.contains(&GLit::neg(a)) {
        cur.insert(GLit::neg(a)).expect("fresh atom");
        let r = search_af(view, d, atoms, at + 1, cur, out, budget, cap);
        cur.remove(GLit::neg(a));
        r?;
    }
    Ok(())
}

/// Definition 3 evaluated by iterating rules instead of the atom
/// universe: condition (a) runs over the literals of `m`; condition (b)
/// is equivalent to "no rule with an undefined head atom is applicable
/// yet unattacked", because atoms with no rules satisfy (b) vacuously.
/// This avoids needing an `n_atoms` bound and is exact for any
/// interpretation (the AF search and the propagating solver both use
/// it).
pub(crate) fn is_model_for_af_search(view: &View, m: &Interpretation) -> bool {
    // (a) over the literals of m.
    for lit in m.literals() {
        for &li in view.rules_with_head(lit.complement()) {
            if !view.blocked(li, m) && !view.overruled_by_applied(li, m) {
                return false;
            }
        }
    }
    // (b) over rules with undefined heads.
    for (li, r) in view.rules() {
        if m.undefined(r.head.atom())
            && view.applicable(li, m)
            && !view.overruled(li, m)
            && !view.defeated(li, m)
        {
            return false;
        }
    }
    true
}

/// Enumerates **all** models (Definition 3) over the full atom universe
/// `0..n_atoms`, optionally restricted to supersets of `superset`.
///
/// 3^n worst case — use on small programs (the paper's examples, the
/// Prop. 2 validation suite).
pub fn enumerate_models(
    view: &View,
    n_atoms: usize,
    superset: Option<&Interpretation>,
) -> Vec<Interpretation> {
    let mut cur = match superset {
        Some(s) => s.clone(),
        None => Interpretation::new(),
    };
    let free: Vec<AtomId> = (0..n_atoms as u32)
        .map(AtomId)
        .filter(|&a| cur.undefined(a))
        .collect();
    let mut out = Vec::new();
    search_all(view, n_atoms, &free, 0, &mut cur, &mut out);
    out
}

fn search_all(
    view: &View,
    n_atoms: usize,
    free: &[AtomId],
    at: usize,
    cur: &mut Interpretation,
    out: &mut Vec<Interpretation>,
) {
    if at == free.len() {
        if is_model(view, cur, n_atoms) {
            out.push(cur.clone());
        }
        return;
    }
    let a = free[at];
    search_all(view, n_atoms, free, at + 1, cur, out);
    cur.insert(GLit::pos(a)).expect("fresh atom");
    search_all(view, n_atoms, free, at + 1, cur, out);
    cur.remove(GLit::pos(a));
    cur.insert(GLit::neg(a)).expect("fresh atom");
    search_all(view, n_atoms, free, at + 1, cur, out);
    cur.remove(GLit::neg(a));
}

/// Keeps only the maximal interpretations under literal-set inclusion.
pub fn maximal_only(models: Vec<Interpretation>) -> Vec<Interpretation> {
    let keep: Vec<bool> = models
        .iter()
        .map(|m| !models.iter().any(|n| m.is_proper_subset(n)))
        .collect();
    let mut out: Vec<Interpretation> = Vec::new();
    for (m, k) in models.into_iter().zip(keep) {
        if k && !out.contains(&m) {
            out.push(m);
        }
    }
    out
}

/// Budgeted [`maximal_only`]: same result on completion, but the
/// quadratic pairwise filter ticks the budget once per comparison, so
/// a deadline or cancellation stops it promptly even over a huge model
/// set (an interrupted enumeration can hand this function hundreds of
/// thousands of candidates). On interruption no enumerated model is
/// dropped: the not-yet-confirmed remainder is appended unfiltered, so
/// the partial set may contain non-maximal assumption-free models —
/// which the `Interrupted` wrapper already signals.
pub fn maximal_only_budgeted(
    models: Vec<Interpretation>,
    budget: &Budget,
) -> Eval<Vec<Interpretation>> {
    if budget.is_unlimited() {
        return Eval::Complete(maximal_only(models));
    }
    let mut ticker = budget.ticker();
    let mut out: Vec<Interpretation> = Vec::new();
    for (i, m) in models.iter().enumerate() {
        let mut interrupted = None;
        let mut keep = true;
        for n in &models {
            if let Err(reason) = ticker.tick() {
                interrupted = Some(reason);
                break;
            }
            if m.is_proper_subset(n) {
                keep = false;
                break;
            }
        }
        if keep && interrupted.is_none() {
            for n in &out {
                if let Err(reason) = ticker.tick() {
                    interrupted = Some(reason);
                    break;
                }
                if n == m {
                    keep = false;
                    break;
                }
            }
        }
        if let Some(reason) = interrupted {
            drop(ticker);
            let mut partial = out;
            partial.extend_from_slice(&models[i..]);
            return Eval::Interrupted(Interrupted { reason, partial });
        }
        if keep {
            out.push(m.clone());
        }
    }
    Eval::Complete(out)
}

/// The **stable models**: maximal assumption-free models (Definition 9).
///
/// Splits the view into independent rule groups first
/// ([`crate::decomp::stable_models_decomposed`]) and solves each with
/// the propagating enumerator
/// ([`crate::stable_solver::enumerate_assumption_free_propagating`]);
/// the plain enumerator ([`enumerate_assumption_free`]) is kept as the
/// differential-testing reference (`stable_models_naive`), and
/// [`crate::stable_solver::stable_models_propagating`] as the
/// undecomposed (`--no-decomp`) path.
pub fn stable_models(view: &View, n_atoms: usize) -> Vec<Interpretation> {
    crate::decomp::stable_models_decomposed(view, n_atoms)
}

/// [`stable_models`] under a [`Budget`], optionally capped at
/// `max_models` *assumption-free* models explored.
///
/// **Anytime guarantee:** every interpretation in a partial result is
/// a genuine assumption-free model (a member of the unbudgeted
/// assumption-free enumeration). Maximality, however, is relative to
/// the models found before the interruption — with a partial result a
/// listed model may be subsumed by an undiscovered larger one, so
/// treat partial entries as "best stable candidates so far".
pub fn stable_models_budgeted(
    view: &View,
    n_atoms: usize,
    budget: &Budget,
    max_models: Option<usize>,
) -> Eval<Vec<Interpretation>> {
    crate::decomp::stable_models_decomposed_budgeted(view, n_atoms, budget, max_models)
}

/// [`stable_models_budgeted`] without the group decomposition: one
/// monolithic propagating search over the whole view. The `--no-decomp`
/// escape hatch, and the fallback when the view is a single group.
pub fn stable_models_monolithic_budgeted(
    view: &View,
    n_atoms: usize,
    budget: &Budget,
    max_models: Option<usize>,
) -> Eval<Vec<Interpretation>> {
    match crate::stable_solver::enumerate_assumption_free_propagating_budgeted(
        view, n_atoms, budget, max_models,
    ) {
        Eval::Complete(ms) => Eval::Complete(maximal_only(ms)),
        Eval::Interrupted(Interrupted { reason, partial }) => {
            // The budget is already spent here, and `maximal_only` is
            // quadratic — on a large partial list it could cost far more
            // than the limit it just enforced (a 1-second deadline must
            // not be followed by a 10-second filter). Filter only when
            // it is provably cheap; otherwise return the raw
            // assumption-free list, which satisfies the same anytime
            // guarantee (every member is a genuine AF model).
            const CHEAP_FILTER: usize = 1024;
            let partial = if partial.len() <= CHEAP_FILTER {
                maximal_only(partial)
            } else {
                partial
            };
            Eval::Interrupted(Interrupted { reason, partial })
        }
    }
}

/// [`stable_models`] via the reference (non-propagating) enumerator.
pub fn stable_models_naive(view: &View, n_atoms: usize) -> Vec<Interpretation> {
    maximal_only(enumerate_assumption_free(view, n_atoms))
}

/// Whether a **total** model exists over `0..n_atoms` (Definition 5a).
/// Exponential; small programs only.
pub fn has_total_model(view: &View, n_atoms: usize) -> bool {
    enumerate_models(view, n_atoms, None)
        .iter()
        .any(|m| m.is_total(n_atoms))
}

/// Extends a model to an **exhaustive** model (Proposition 2): a model
/// that is a proper subset of no other model. Exact via enumeration of
/// superset models; exponential; small programs only.
pub fn extend_to_exhaustive(view: &View, m: &Interpretation, n_atoms: usize) -> Interpretation {
    let supers = enumerate_models(view, n_atoms, Some(m));
    // `m` itself is among the candidates when it is a model; Prop. 2
    // guarantees a maximal one exists.
    maximal_only(supers)
        .into_iter()
        .next()
        .expect("Proposition 2: every model extends to an exhaustive model")
}

/// Whether `m` is an exhaustive model (Definition 5b): a model with no
/// proper superset model. Exponential; small programs only.
pub fn is_exhaustive(view: &View, m: &Interpretation, n_atoms: usize) -> bool {
    if !is_model(view, m, n_atoms) {
        return false;
    }
    enumerate_models(view, n_atoms, Some(m))
        .iter()
        .all(|n| !m.is_proper_subset(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixpoint::least_model;
    use olp_core::{CompId, World};
    use olp_ground::{ground_exhaustive, GroundConfig, GroundProgram};
    use olp_parser::{parse_ground_literal, parse_program};

    fn ground(src: &str) -> (World, GroundProgram) {
        let mut w = World::new();
        let p = parse_program(&mut w, src).unwrap();
        let g = ground_exhaustive(&mut w, &p, &GroundConfig::default()).unwrap();
        (w, g)
    }

    fn render_all(w: &World, ms: &[Interpretation]) -> Vec<String> {
        let mut v: Vec<String> = ms.iter().map(|m| m.render(w)).collect();
        v.sort();
        v
    }

    #[test]
    fn example5_two_stable_models() {
        let (w, g) = ground(
            "module c2 { a. b. c. }
             module c1 < c2 { -a :- b, c. -b :- a. -b :- -b. }",
        );
        let v = View::new(&g, CompId(1));
        let af = enumerate_assumption_free(&v, g.n_atoms);
        // {c} is assumption-free but not stable.
        assert!(render_all(&w, &af).contains(&"{c}".to_string()));
        let stable = stable_models(&v, g.n_atoms);
        assert_eq!(
            render_all(&w, &stable),
            vec!["{-a, b, c}".to_string(), "{-b, a, c}".to_string()]
        );
    }

    #[test]
    fn fig2_no_total_model_and_empty_stable() {
        let (w, g) = ground(
            "module c3 { rich(mimmo). -poor(X) :- rich(X). }
             module c2 { poor(mimmo). -rich(X) :- poor(X). }
             module c1 < c2, c3 { free_ticket(X) :- poor(X). }",
        );
        let v = View::new(&g, CompId(2));
        assert!(!has_total_model(&v, g.n_atoms));
        let stable = stable_models(&v, g.n_atoms);
        assert_eq!(render_all(&w, &stable), vec!["{}".to_string()]);
    }

    #[test]
    fn p4_stable_is_empty_without_cwa() {
        let (mut w, g) = ground("a :- b.");
        let v = View::new(&g, CompId(0));
        let stable = stable_models(&v, g.n_atoms);
        assert_eq!(render_all(&w, &stable), vec!["{}".to_string()]);
        // {-a,-b} is a model (an exhaustive one, even) but not
        // assumption-free, hence not stable.
        let nn = Interpretation::from_literals([
            parse_ground_literal(&mut w, "-a").unwrap(),
            parse_ground_literal(&mut w, "-b").unwrap(),
        ])
        .unwrap();
        let all = enumerate_models(&v, g.n_atoms, None);
        assert!(all.contains(&nn));
        assert!(is_exhaustive(&v, &nn, g.n_atoms));
    }

    #[test]
    fn least_model_is_subset_of_every_stable_model() {
        for src in [
            "module c2 { a. b. c. }
             module c1 < c2 { -a :- b, c. -b :- a. -b :- -b. }",
            "a :- b. -a :- b. b.",
            "module c2 { p. -q. } module c1 < c2 { q :- p. }",
        ] {
            let (_, g) = ground(src);
            for c in 0..g.order.len() {
                let v = View::new(&g, CompId(c as u32));
                let lm = least_model(&v);
                for s in stable_models(&v, g.n_atoms) {
                    assert!(lm.is_subset(&s), "lfp ⊄ stable for {src}");
                }
            }
        }
    }

    #[test]
    fn exhaustive_extension_exists_for_every_model() {
        // Proposition 2 on P3.
        let (_, g) = ground("a :- b. -a :- b.");
        let v = View::new(&g, CompId(0));
        for m in enumerate_models(&v, g.n_atoms, None) {
            let e = extend_to_exhaustive(&v, &m, g.n_atoms);
            assert!(m.is_subset(&e));
            assert!(is_exhaustive(&v, &e, g.n_atoms));
        }
    }

    #[test]
    fn total_model_exists_for_fig1_in_c1() {
        let (_, g) = ground(
            "module c2 { bird(penguin). bird(pigeon). fly(X) :- bird(X).
                -ground_animal(X) :- bird(X). }
             module c1 < c2 { ground_animal(penguin). -fly(X) :- ground_animal(X). }",
        );
        let v = View::new(&g, CompId(1));
        assert!(has_total_model(&v, g.n_atoms));
        // The least model is total here, so it is the unique stable one.
        let stable = stable_models(&v, g.n_atoms);
        assert_eq!(stable.len(), 1);
        assert_eq!(stable[0], least_model(&v));
    }

    #[test]
    fn af_enumeration_always_contains_least_model() {
        for src in [
            "a :- b. -a :- b.",
            "p. -p.",
            "module c2 { a. } module c1 < c2 { -a :- b. }",
        ] {
            let (_, g) = ground(src);
            for c in 0..g.order.len() {
                let v = View::new(&g, CompId(c as u32));
                let lm = least_model(&v);
                let af = enumerate_assumption_free(&v, g.n_atoms);
                assert!(af.contains(&lm), "lfp missing from AF enumeration: {src}");
            }
        }
    }

    #[test]
    fn maximal_only_filters_correctly() {
        let a = Interpretation::from_literals([GLit::pos(AtomId(0))]).unwrap();
        let ab =
            Interpretation::from_literals([GLit::pos(AtomId(0)), GLit::pos(AtomId(1))]).unwrap();
        let c = Interpretation::from_literals([GLit::neg(AtomId(2))]).unwrap();
        let out = maximal_only(vec![a.clone(), ab.clone(), c.clone(), ab.clone()]);
        assert_eq!(out.len(), 2);
        assert!(out.contains(&ab) && out.contains(&c) && !out.contains(&a));
    }
}
