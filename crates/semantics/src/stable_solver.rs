//! A propagating enumerator for assumption-free models.
//!
//! [`crate::stable::enumerate_assumption_free`] branches 3-ways per
//! derivable atom and checks Definition 3 + Theorem 1a only at the
//! leaves. This solver adds **unit propagation** derived from
//! Definition 3, pruning entire subtrees:
//!
//! * **P1 (fire).** A rule whose body is surely true and whose every
//!   potential overruler *and* defeater is surely blocked forces its
//!   head: leaving the head undefined would violate (b), and making the
//!   complement true would violate (a) (no overruler can be applied
//!   when all are blocked). Conflicts backtrack immediately.
//! * **P2 (re-confirm).** For a literal already true, every rule with
//!   the complementary head and **no** potential overrulers must end up
//!   blocked. If none of its body literals can be refuted any more,
//!   the branch is dead; if exactly one still can, its refutation is
//!   forced (unit propagation).
//!
//! Both rules are *monotone*: whatever they force holds in every
//! completion of the partial assignment, so the enumeration stays
//! complete. Leaves still run the exact model + assumption-free checks;
//! the output is set-equal to the naive enumerator (differentially
//! property-tested in `tests/theorems.rs`).

use crate::assumption::is_assumption_free;
use crate::stable::maximal_only;
use crate::view::{LocalIdx, View};
use olp_core::{
    AtomId, Budget, Eval, FxHashMap, FxHashSet, GLit, Interpretation, InterruptReason, Interrupted,
    Sign,
};
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};

const UNKNOWN: u8 = 0;
const TRUE: u8 = 1;
const FALSE: u8 = 2;
const UNDEF: u8 = 3;

fn encode_reason(r: InterruptReason) -> u8 {
    match r {
        InterruptReason::Steps => 1,
        InterruptReason::Deadline => 2,
        InterruptReason::Cancelled => 3,
        InterruptReason::ModelCap => 4,
    }
}

/// Inverse of [`encode_reason`]. Code 0 is the governor's "no reason
/// latched yet" sentinel and is never decoded (every decode site reads
/// the cell only after a trip stored a non-zero code); any other
/// unknown code is a logic error, not a silent `Cancelled`.
fn decode_reason(code: u8) -> InterruptReason {
    match code {
        1 => InterruptReason::Steps,
        2 => InterruptReason::Deadline,
        3 => InterruptReason::Cancelled,
        4 => InterruptReason::ModelCap,
        other => {
            debug_assert!(false, "decode_reason: unknown reason code {other}");
            InterruptReason::Cancelled
        }
    }
}

/// Shared governor state for one enumeration: the budget handle plus
/// the cross-worker model count and first-interrupt latch. Sequential
/// searches use a private instance; the parallel enumerator shares one
/// across its crossbeam workers so a cap or budget trip stops all of
/// them cooperatively.
struct Governor<'b> {
    budget: &'b Budget,
    /// Stop enumerating once this many models have been found.
    cap: usize,
    found: AtomicUsize,
    stopped: AtomicBool,
    reason: AtomicU8,
}

impl<'b> Governor<'b> {
    fn new(budget: &'b Budget, max_models: Option<usize>) -> Self {
        Governor {
            budget,
            cap: max_models.unwrap_or(usize::MAX),
            found: AtomicUsize::new(0),
            stopped: AtomicBool::new(false),
            reason: AtomicU8::new(0),
        }
    }

    /// Latch the first interrupt reason and raise the stop flag.
    fn trip(&self, r: InterruptReason) -> InterruptReason {
        let _ =
            self.reason
                .compare_exchange(0, encode_reason(r), Ordering::Relaxed, Ordering::Relaxed);
        self.stopped.store(true, Ordering::Release);
        decode_reason(self.reason.load(Ordering::Relaxed))
    }

    /// Per-node gate: observes a prior trip, the model cap, and the
    /// budget (one tick charged per call).
    #[inline]
    fn gate(&self) -> Result<(), InterruptReason> {
        if self.stopped.load(Ordering::Acquire) {
            return Err(decode_reason(self.reason.load(Ordering::Relaxed)));
        }
        if self.found.load(Ordering::Relaxed) >= self.cap {
            return Err(self.trip(InterruptReason::ModelCap));
        }
        self.budget.tick().map_err(|r| self.trip(r))
    }

    /// The latched trip reason, if any worker tripped the governor.
    fn tripped_reason(&self) -> Option<InterruptReason> {
        if self.stopped.load(Ordering::Acquire) {
            Some(decode_reason(self.reason.load(Ordering::Relaxed)))
        } else {
            None
        }
    }
}

#[derive(Clone)]
struct Solver<'a, 'g> {
    view: &'a View<'g>,
    /// Derivability closure (bound on every AF model).
    d: FxHashSet<GLit>,
    /// Branch atoms and their index in the assignment vector.
    atoms: Vec<AtomId>,
    slot: FxHashMap<AtomId, usize>,
    /// Watched-literal index: `watchers[s]` lists the rules whose P1/P2
    /// status can change when the branch atom in slot `s` is assigned —
    /// the rules watching the atom through their own body, their head,
    /// or the body of one of their potential overrulers/defeaters.
    watchers: Vec<Vec<LocalIdx>>,
    out: Vec<Interpretation>,
}

impl<'a, 'g> Solver<'a, 'g> {
    fn new(view: &'a View<'g>, d: FxHashSet<GLit>, atoms: Vec<AtomId>) -> Self {
        let slot: FxHashMap<AtomId, usize> =
            atoms.iter().enumerate().map(|(i, &a)| (a, i)).collect();
        // The P1 condition of a rule reads its body atoms, its head atom
        // and its attackers' body atoms; P2 reads its head atom and its
        // body atoms. Register the rule as a watcher of each (branch)
        // atom in that union, so propagation only ever revisits rules
        // that can actually have changed.
        let mut watchers: Vec<Vec<LocalIdx>> = vec![Vec::new(); atoms.len()];
        for (li, r) in view.rules() {
            let mut watched: Vec<usize> = Vec::new();
            let add = |a: AtomId, watched: &mut Vec<usize>| {
                if let Some(&s) = slot.get(&a) {
                    watched.push(s);
                }
            };
            add(r.head.atom(), &mut watched);
            for &b in &r.body {
                add(b.atom(), &mut watched);
            }
            for &a in view.overrulers(li).iter().chain(view.defeaters(li)) {
                for &b in &view.rule(a).body {
                    add(b.atom(), &mut watched);
                }
            }
            watched.sort_unstable();
            watched.dedup();
            for s in watched {
                watchers[s].push(li);
            }
        }
        Solver {
            view,
            d,
            atoms,
            slot,
            watchers,
            out: Vec::new(),
        }
    }

    /// All rules — the dirty seed for a fresh (root) assignment.
    fn all_rules(&self) -> Vec<LocalIdx> {
        (0..self.view.len() as LocalIdx).collect()
    }

    /// Push every watcher of `atom` onto the dirty queue (called after
    /// `atom`'s assignment changed).
    #[inline]
    fn wake(&self, atom: AtomId, dirty: &mut Vec<LocalIdx>) {
        if let Some(&s) = self.slot.get(&atom) {
            dirty.extend_from_slice(&self.watchers[s]);
        }
    }
    /// `Some(state)` if the literal's atom is a branch atom, else the
    /// atom is permanently undefined (treated as assigned `UNDEF`).
    #[inline]
    fn atom_state(&self, assign: &[u8], atom: AtomId) -> u8 {
        match self.slot.get(&atom) {
            Some(&i) => assign[i],
            None => UNDEF,
        }
    }

    /// The literal is true in every completion.
    #[inline]
    fn surely_true(&self, assign: &[u8], l: GLit) -> bool {
        let s = self.atom_state(assign, l.atom());
        match l.sign() {
            Sign::Pos => s == TRUE,
            Sign::Neg => s == FALSE,
        }
    }

    /// The literal's complement is true in every completion (the
    /// literal is refuted).
    #[inline]
    fn surely_refuted(&self, assign: &[u8], l: GLit) -> bool {
        self.surely_true(assign, l.complement())
    }

    /// The literal's complement can no longer become true: its atom is
    /// decided to something other than the complement's sign.
    #[inline]
    fn complement_impossible(&self, assign: &[u8], l: GLit) -> bool {
        let s = self.atom_state(assign, l.atom());
        match l.sign() {
            // complement is ¬atom: impossible if atom TRUE or UNDEF
            Sign::Pos => s == TRUE || s == UNDEF,
            // complement is atom: impossible if atom FALSE or UNDEF
            Sign::Neg => s == FALSE || s == UNDEF,
        }
    }

    fn surely_applicable(&self, assign: &[u8], li: LocalIdx) -> bool {
        self.view
            .rule(li)
            .body
            .iter()
            .all(|&b| self.surely_true(assign, b))
    }

    fn surely_blocked(&self, assign: &[u8], li: LocalIdx) -> bool {
        self.view
            .rule(li)
            .body
            .iter()
            .any(|&b| self.surely_refuted(assign, b))
    }

    /// Assigns `value` to `atom`; `false` on conflict.
    fn set(&self, assign: &mut [u8], atom: AtomId, value: u8) -> bool {
        match self.slot.get(&atom) {
            Some(&i) => {
                if assign[i] == UNKNOWN {
                    assign[i] = value;
                    true
                } else {
                    assign[i] == value
                }
            }
            // Non-branch atoms are permanently undefined.
            None => value == UNDEF,
        }
    }

    /// Forces the literal true; `false` on conflict.
    fn force_lit(&self, assign: &mut [u8], l: GLit) -> bool {
        let v = match l.sign() {
            Sign::Pos => TRUE,
            Sign::Neg => FALSE,
        };
        self.set(assign, l.atom(), v)
    }

    /// Runs P1/P2 to fixpoint over the `dirty` rule queue; `Ok(false)`
    /// on conflict. Whenever a forced assignment lands, the watchers of
    /// the changed atom rejoin the queue — rules none of whose watched
    /// atoms changed are never revisited (their P1/P2 outcome is
    /// unchanged by construction of the watch sets).
    fn propagate(
        &self,
        assign: &mut [u8],
        gov: &Governor,
        dirty: &mut Vec<LocalIdx>,
    ) -> Result<bool, InterruptReason> {
        while let Some(li) = dirty.pop() {
            gov.budget.tick().map_err(|r| gov.trip(r))?;
            let r = self.view.rule(li);
            // P1: forced firing.
            if self.surely_applicable(assign, li)
                && self
                    .view
                    .overrulers(li)
                    .iter()
                    .all(|&a| self.surely_blocked(assign, a))
                && self
                    .view
                    .defeaters(li)
                    .iter()
                    .all(|&a| self.surely_blocked(assign, a))
            {
                match self.atom_state(assign, r.head.atom()) {
                    UNKNOWN => {
                        if !self.force_lit(assign, r.head) {
                            return Ok(false);
                        }
                        self.wake(r.head.atom(), dirty);
                    }
                    s => {
                        let want = match r.head.sign() {
                            Sign::Pos => TRUE,
                            Sign::Neg => FALSE,
                        };
                        if s != want {
                            return Ok(false);
                        }
                    }
                }
            }
            // P2: a true literal's unoverrulable contradictors must
            // be blocked.
            if self.surely_true(assign, r.head.complement())
                && self.view.overrulers(li).is_empty()
                && !self.surely_blocked(assign, li)
            {
                let refutable: Vec<GLit> = r
                    .body
                    .iter()
                    .copied()
                    .filter(|&b| !self.complement_impossible(assign, b))
                    .collect();
                match refutable.len() {
                    0 => return Ok(false),
                    1 => {
                        if !self.force_lit(assign, refutable[0].complement()) {
                            return Ok(false);
                        }
                        self.wake(refutable[0].atom(), dirty);
                    }
                    _ => {}
                }
            }
        }
        Ok(true)
    }

    fn search(
        &mut self,
        assign: &mut [u8],
        gov: &Governor,
        dirty: &mut Vec<LocalIdx>,
    ) -> Result<(), InterruptReason> {
        gov.gate()?;
        if !self.propagate(assign, gov, dirty)? {
            return Ok(());
        }
        match assign.iter().position(|&s| s == UNKNOWN) {
            None => {
                // Complete: exact leaf checks.
                let mut m = Interpretation::new();
                for (i, &s) in assign.iter().enumerate() {
                    let atom = self.atoms[i];
                    let lit = match s {
                        TRUE => GLit::pos(atom),
                        FALSE => GLit::neg(atom),
                        _ => continue,
                    };
                    if m.insert(lit).is_err() {
                        return Ok(()); // unreachable: one slot per atom
                    }
                }
                if crate::stable::is_model_for_af_search(self.view, &m)
                    && is_assumption_free(self.view, &m)
                {
                    self.out.push(m);
                    if gov.found.fetch_add(1, Ordering::Relaxed) + 1 >= gov.cap {
                        return Err(gov.trip(InterruptReason::ModelCap));
                    }
                }
                Ok(())
            }
            Some(i) => {
                let atom = self.atoms[i];
                let mut options = Vec::with_capacity(3);
                options.push(UNDEF);
                if self.d.contains(&GLit::pos(atom)) {
                    options.push(TRUE);
                }
                if self.d.contains(&GLit::neg(atom)) {
                    options.push(FALSE);
                }
                for v in options {
                    let mut child = assign.to_vec();
                    child[i] = v;
                    // Only rules watching the branched atom can react.
                    let mut child_dirty = self.watchers[i].clone();
                    self.search(&mut child, gov, &mut child_dirty)?;
                }
                Ok(())
            }
        }
    }
}

/// Enumerates every assumption-free model with unit propagation.
/// Set-equal to [`crate::stable::enumerate_assumption_free`], usually
/// much faster on programs with forced structure.
pub fn enumerate_assumption_free_propagating(view: &View, n_atoms: usize) -> Vec<Interpretation> {
    enumerate_assumption_free_propagating_budgeted(view, n_atoms, &Budget::unlimited(), None)
        .into_value()
}

/// [`enumerate_assumption_free_propagating`] under a [`Budget`],
/// optionally capped at `max_models` results.
///
/// **Anytime guarantee:** every interpretation in a partial result
/// passed the exact leaf checks, so the partial list is a subset of
/// the unbudgeted enumeration.
pub fn enumerate_assumption_free_propagating_budgeted(
    view: &View,
    _n_atoms: usize,
    budget: &Budget,
    max_models: Option<usize>,
) -> Eval<Vec<Interpretation>> {
    let d = match crate::stable::derivability_closure_budgeted(view, budget) {
        Ok(d) => d,
        Err(reason) => {
            return Eval::Interrupted(Interrupted {
                reason,
                partial: Vec::new(),
            })
        }
    };
    let mut atoms: Vec<AtomId> = d
        .iter()
        .map(|l| l.atom())
        .collect::<FxHashSet<_>>()
        .into_iter()
        .collect();
    atoms.sort_unstable();
    let gov = Governor::new(budget, max_models);
    let mut solver = Solver::new(view, d, atoms);
    let mut assign = vec![UNKNOWN; solver.atoms.len()];
    let mut dirty = solver.all_rules();
    match solver.search(&mut assign, &gov, &mut dirty) {
        Ok(()) => Eval::Complete(solver.out),
        Err(reason) => Eval::Interrupted(Interrupted {
            reason,
            partial: solver.out,
        }),
    }
}

/// Stable models via the propagating enumerator.
pub fn stable_models_propagating(view: &View, n_atoms: usize) -> Vec<Interpretation> {
    maximal_only(enumerate_assumption_free_propagating(view, n_atoms))
}

/// Enumerates assumption-free models in parallel: the top of the search
/// tree is expanded into at least `2 × threads` propagated prefixes,
/// which worker threads then complete independently (the search below a
/// prefix shares no mutable state). Set-equal to the sequential
/// enumerators; worthwhile when the contested core is large.
pub fn enumerate_assumption_free_parallel(
    view: &View,
    n_atoms: usize,
    threads: usize,
) -> Vec<Interpretation> {
    enumerate_assumption_free_parallel_budgeted(view, n_atoms, threads, &Budget::unlimited(), None)
        .into_value()
}

/// [`enumerate_assumption_free_parallel`] under a shared [`Budget`].
///
/// All workers share one [`Governor`], so cancellation / exhaustion on
/// any thread stops the whole fleet promptly; the partial result is the
/// merged, deduplicated union of what every worker had verified so far
/// (each entry passed the exact leaf checks, so the partial list is a
/// subset of the unbudgeted enumeration).
pub fn enumerate_assumption_free_parallel_budgeted(
    view: &View,
    _n_atoms: usize,
    threads: usize,
    budget: &Budget,
    max_models: Option<usize>,
) -> Eval<Vec<Interpretation>> {
    // Group-level parallelism first: when the view splits into
    // independent rule groups, whole groups are distributed to the
    // workers and the per-group model sets combined as a product
    // ([`crate::decomp`]). Prefix splitting below is the fallback for a
    // single connected group.
    let decomp = crate::decomp::Decomposition::new(view);
    if decomp.groups().len() > 1 {
        return crate::decomp::enumerate_af_groups_parallel(
            view, &decomp, threads, budget, max_models,
        );
    }
    let d = match crate::stable::derivability_closure_budgeted(view, budget) {
        Ok(d) => d,
        Err(reason) => {
            return Eval::Interrupted(Interrupted {
                reason,
                partial: Vec::new(),
            })
        }
    };
    let mut atoms: Vec<AtomId> = d
        .iter()
        .map(|l| l.atom())
        .collect::<FxHashSet<_>>()
        .into_iter()
        .collect();
    atoms.sort_unstable();
    let threads = threads.max(1);
    let gov = Governor::new(budget, max_models);

    // Breadth-first expansion of the prefix frontier, with propagation
    // applied at every step so dead prefixes never spawn work.
    let seed_solver = Solver::new(view, d, atoms);
    let mut root = vec![UNKNOWN; seed_solver.atoms.len()];
    let mut root_dirty = seed_solver.all_rules();
    match seed_solver.propagate(&mut root, &gov, &mut root_dirty) {
        Ok(true) => {}
        // Root conflict: no assumption-free model exists at all.
        Ok(false) => return Eval::Complete(Vec::new()),
        Err(reason) => {
            return Eval::Interrupted(Interrupted {
                reason,
                partial: Vec::new(),
            })
        }
    }
    let mut frontier: Vec<Vec<u8>> = vec![root];
    let mut leaves: Vec<Vec<u8>> = Vec::new();
    while frontier.len() < threads * 2 {
        let Some(pos) = frontier.iter().position(|a| a.contains(&UNKNOWN)) else {
            break;
        };
        let assign = frontier.swap_remove(pos);
        let i = assign
            .iter()
            .position(|&s| s == UNKNOWN)
            .expect("checked above");
        let atom = seed_solver.atoms[i];
        let mut options = vec![UNDEF];
        if seed_solver.d.contains(&GLit::pos(atom)) {
            options.push(TRUE);
        }
        if seed_solver.d.contains(&GLit::neg(atom)) {
            options.push(FALSE);
        }
        for v in options {
            let mut child = assign.clone();
            child[i] = v;
            let mut child_dirty = seed_solver.watchers[i].clone();
            match seed_solver.propagate(&mut child, &gov, &mut child_dirty) {
                Ok(true) => {
                    if child.contains(&UNKNOWN) {
                        frontier.push(child);
                    } else {
                        leaves.push(child);
                    }
                }
                Ok(false) => {}
                // Interrupted before any leaf was verified: no model in
                // the partial result is unsound, so return the empty list.
                Err(reason) => {
                    return Eval::Interrupted(Interrupted {
                        reason,
                        partial: Vec::new(),
                    })
                }
            }
        }
        if frontier.is_empty() {
            break;
        }
    }
    frontier.extend(leaves);

    // Complete each prefix on a worker thread. Every worker shares the
    // one governor, so the first budget trip (on any thread) stops the
    // whole fleet at its next gate.
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<Vec<Interpretation>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let frontier = &frontier;
                let next = &next;
                let seed_solver = &seed_solver;
                let gov = &gov;
                scope.spawn(move |_| {
                    let mut solver = seed_solver.clone();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= frontier.len() {
                            return solver.out;
                        }
                        let mut assign = frontier[i].clone();
                        // Prefixes were propagated to fixpoint during
                        // expansion, so the dirty queue starts empty.
                        if solver.search(&mut assign, gov, &mut Vec::new()).is_err() {
                            // Keep whatever this worker verified; the
                            // reason is latched in the governor.
                            return solver.out;
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    })
    .expect("scope");

    let mut out: Vec<Interpretation> = results.into_iter().flatten().collect();
    // Deduplicate (distinct prefixes can propagate to the same complete
    // assignment only if they were duplicated in the frontier split —
    // they cannot, but dedup defensively and deterministically).
    out.sort_by(|a, b| {
        a.literals()
            .collect::<Vec<_>>()
            .cmp(&b.literals().collect::<Vec<_>>())
    });
    out.dedup();
    match gov.tripped_reason() {
        // A ModelCap trip with the cap actually reached is still a cap
        // interruption (the enumeration is intentionally truncated).
        Some(reason) => Eval::Interrupted(Interrupted {
            reason,
            partial: out,
        }),
        None => Eval::Complete(out),
    }
}

/// Stable models via the parallel enumerator.
pub fn stable_models_parallel(view: &View, n_atoms: usize, threads: usize) -> Vec<Interpretation> {
    maximal_only(enumerate_assumption_free_parallel(view, n_atoms, threads))
}

/// Budgeted stable models via the parallel enumerator: parallel
/// assumption-free enumeration followed by the **budgeted** maximality
/// filter ([`crate::stable::maximal_only_budgeted`]). The filter must
/// share the budget: an enumeration interrupted by a deadline can hand
/// it a huge candidate set, and an unbudgeted quadratic pass would then
/// dwarf the deadline it was meant to honour. When the enumeration was
/// itself interrupted its reason wins, and the partial set may contain
/// non-maximal assumption-free models (the filter gets no budget left).
pub fn stable_models_parallel_budgeted(
    view: &View,
    n_atoms: usize,
    threads: usize,
    budget: &Budget,
    max_models: Option<usize>,
) -> Eval<Vec<Interpretation>> {
    let (af, reason) = match enumerate_assumption_free_parallel_budgeted(
        view, n_atoms, threads, budget, max_models,
    ) {
        Eval::Complete(ms) => (ms, None),
        Eval::Interrupted(i) => (i.partial, Some(i.reason)),
    };
    let filtered = crate::stable::maximal_only_budgeted(af, budget);
    match reason {
        None => filtered,
        Some(reason) => Eval::Interrupted(Interrupted {
            reason,
            partial: filtered.into_value(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stable::{enumerate_assumption_free, stable_models};
    use olp_core::{CompId, World};
    use olp_ground::{ground_exhaustive, GroundConfig, GroundProgram};
    use olp_parser::parse_program;

    fn ground(src: &str) -> (World, GroundProgram) {
        let mut w = World::new();
        let p = parse_program(&mut w, src).unwrap();
        let g = ground_exhaustive(&mut w, &p, &GroundConfig::default()).unwrap();
        (w, g)
    }

    fn renders(w: &World, ms: &[Interpretation]) -> Vec<String> {
        let mut v: Vec<String> = ms.iter().map(|m| m.render(w)).collect();
        v.sort();
        v
    }

    #[test]
    fn interrupt_reason_codes_round_trip() {
        use InterruptReason::*;
        for r in [Steps, Deadline, Cancelled, ModelCap] {
            assert_eq!(decode_reason(encode_reason(r)), r);
            assert_ne!(
                encode_reason(r),
                0,
                "0 is the governor's unset sentinel and must stay unused"
            );
        }
    }

    #[test]
    fn agrees_with_naive_on_paper_programs() {
        for src in [
            "module c2 { a. b. c. }
             module c1 < c2 { -a :- b, c. -b :- a. -b :- -b. }",
            "a :- b. -a :- b. b.",
            "module c3 { rich(mimmo). -poor(X) :- rich(X). }
             module c2 { poor(mimmo). -rich(X) :- poor(X). }
             module c1 < c2, c3 { free_ticket(X) :- poor(X). }",
            "module c2 { bird(penguin). bird(pigeon). fly(X) :- bird(X).
                -ground_animal(X) :- bird(X). }
             module c1 < c2 { ground_animal(penguin). -fly(X) :- ground_animal(X). }",
            "p. -p.",
            "a :- b.",
        ] {
            let (w, g) = ground(src);
            for ci in 0..g.order.len() {
                let v = View::new(&g, CompId(ci as u32));
                let naive = enumerate_assumption_free(&v, g.n_atoms);
                let prop = enumerate_assumption_free_propagating(&v, g.n_atoms);
                assert_eq!(
                    renders(&w, &naive),
                    renders(&w, &prop),
                    "AF sets differ on {src} in component {ci}"
                );
                assert_eq!(
                    renders(&w, &stable_models(&v, g.n_atoms)),
                    renders(&w, &stable_models_propagating(&v, g.n_atoms)),
                    "stable sets differ on {src} in component {ci}"
                );
            }
        }
    }

    #[test]
    fn parallel_agrees_with_sequential() {
        for src in [
            "module c2 { a. b. c. }
             module c1 < c2 { -a :- b, c. -b :- a. -b :- -b. }",
            "module c2 { a. b. }
             module c1 < c2 { -a :- b. -b :- a. r :- a. r :- b. }",
            "p. -p. q :- p.",
        ] {
            let (w, g) = ground(src);
            for ci in 0..g.order.len() {
                let v = View::new(&g, CompId(ci as u32));
                for threads in [1, 2, 4] {
                    let seq = enumerate_assumption_free_propagating(&v, g.n_atoms);
                    let par = enumerate_assumption_free_parallel(&v, g.n_atoms, threads);
                    assert_eq!(
                        renders(&w, &seq),
                        renders(&w, &par),
                        "{src} comp {ci} threads {threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn propagation_prunes_forced_chains() {
        // A long forced chain has exactly one AF model; the propagating
        // solver must find it without exponential branching (this test
        // is fast *because* propagation collapses the space; the naive
        // enumerator would branch 3^40).
        use std::fmt::Write as _;
        let mut src = String::from("p0.\n");
        for i in 1..40 {
            let _ = writeln!(src, "p{} :- p{}.", i, i - 1);
        }
        let (_, g) = ground(&src);
        let v = View::new(&g, CompId(0));
        let af = enumerate_assumption_free_propagating(&v, g.n_atoms);
        assert_eq!(af.len(), 1);
        assert_eq!(af[0].len(), 40);
    }
}
