//! Compiled component views and rule statuses (Definition 2).
//!
//! The meaning of an ordered program is always taken *in a component*
//! `C`: only the rules of `ground(C*)` participate. A [`View`] compiles
//! that rule set once — indexing bodies and heads, and precomputing for
//! every rule its potential **overrulers** (complementary-headed rules
//! in strictly lower components) and **defeaters** (complementary-headed
//! rules in the same or an incomparable component) — so the five rule
//! statuses of Def. 2 are cheap to evaluate against any interpretation:
//!
//! * *applicable*: `B(r) ⊆ I`
//! * *applied*: applicable and `H(r) ∈ I`
//! * *blocked*: some body literal's complement is in `I`
//! * *overruled*: some **non-blocked** overruler exists
//! * *defeated*: some **non-blocked** defeater exists

use olp_core::Interpretation;
use olp_core::{CompId, FxHashMap, GLit};
use olp_ground::{GroundProgram, GroundRule};

/// Structural statistics of a compiled view (see [`View::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViewStats {
    /// Rules in the view.
    pub rules: usize,
    /// Potential overruling edges (attacker strictly below victim).
    pub overrule_edges: usize,
    /// Potential defeating edges (same or incomparable components).
    pub defeat_edges: usize,
}

/// Index of a rule *within a view* (dense, `0..view.len()`).
pub type LocalIdx = u32;

/// A compiled view `ground(C*)` of a ground program.
#[derive(Debug, Clone)]
pub struct View<'g> {
    /// The underlying ground program.
    pub gp: &'g GroundProgram,
    /// The component whose meaning is being taken.
    pub comp: CompId,
    /// The rules of the view (indices into `gp.rules`).
    rules: Vec<u32>,
    /// Per rule: potential overrulers (local indices).
    overrulers: Vec<Vec<LocalIdx>>,
    /// Per rule: potential defeaters (local indices).
    defeaters: Vec<Vec<LocalIdx>>,
    /// Rules indexed by head literal.
    by_head: FxHashMap<GLit, Vec<LocalIdx>>,
    /// Rules indexed by body literal (each rule listed once per distinct
    /// body literal).
    by_body: FxHashMap<GLit, Vec<LocalIdx>>,
    /// Transposed attack lists: for each rule, the rules it can
    /// overrule / defeat — used by the incremental fixpoint engine.
    victims_overrule: Vec<Vec<LocalIdx>>,
    victims_defeat: Vec<Vec<LocalIdx>>,
}

impl<'g> View<'g> {
    /// Compiles the view of component `comp`.
    pub fn new(gp: &'g GroundProgram, comp: CompId) -> Self {
        Self::from_rules(gp, comp, gp.view(comp).to_vec())
    }

    /// Compiles a view over an **explicit rule subset** (global indices
    /// into `gp.rules`). Head/body indices and attack lists are built
    /// from the subset only: a rule outside `rules` neither fires nor
    /// attacks.
    ///
    /// Used by the decomposition layer ([`crate::decomp`]), whose rule
    /// groups are closed under head-atom sharing — every rule with a
    /// head complementary to an included rule's head is also included —
    /// so the attack structure inside the subset is exactly the attack
    /// structure the full view assigns to those rules.
    pub fn from_rules(gp: &'g GroundProgram, comp: CompId, rules: Vec<u32>) -> Self {
        let n = rules.len();
        let mut by_head: FxHashMap<GLit, Vec<LocalIdx>> = FxHashMap::default();
        let mut by_body: FxHashMap<GLit, Vec<LocalIdx>> = FxHashMap::default();
        for (li, &ri) in rules.iter().enumerate() {
            let r = &gp.rules[ri as usize];
            by_head.entry(r.head).or_default().push(li as LocalIdx);
            for &b in &r.body {
                by_body.entry(b).or_default().push(li as LocalIdx);
            }
        }
        let mut overrulers = vec![Vec::new(); n];
        let mut defeaters = vec![Vec::new(); n];
        let mut victims_overrule = vec![Vec::new(); n];
        let mut victims_defeat = vec![Vec::new(); n];
        for (li, &ri) in rules.iter().enumerate() {
            let r = &gp.rules[ri as usize];
            if let Some(attackers) = by_head.get(&r.head.complement()) {
                for &ai in attackers {
                    let a = &gp.rules[rules[ai as usize] as usize];
                    if gp.order.can_overrule(a.comp, r.comp) {
                        overrulers[li].push(ai);
                        victims_overrule[ai as usize].push(li as LocalIdx);
                    }
                    if gp.order.can_defeat(a.comp, r.comp) {
                        defeaters[li].push(ai);
                        victims_defeat[ai as usize].push(li as LocalIdx);
                    }
                }
            }
        }
        View {
            gp,
            comp,
            rules,
            overrulers,
            defeaters,
            by_head,
            by_body,
            victims_overrule,
            victims_defeat,
        }
    }

    /// A sub-view over a subset of this view's rules (given as **global**
    /// indices, e.g. collected via [`View::global_index`]). See
    /// [`View::from_rules`] for the closure requirement on the subset.
    #[must_use]
    pub fn restrict(&self, rules: &[u32]) -> View<'g> {
        View::from_rules(self.gp, self.comp, rules.to_vec())
    }

    /// Number of rules in the view.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the view has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The rule at local index `li`.
    #[inline]
    pub fn rule(&self, li: LocalIdx) -> &GroundRule {
        &self.gp.rules[self.rules[li as usize] as usize]
    }

    /// The global index (into [`olp_ground::GroundProgram::rules`]) of
    /// the rule at local index `li` — e.g. for rendering via
    /// [`olp_ground::GroundProgram::rule_str`].
    #[inline]
    pub fn global_index(&self, li: LocalIdx) -> u32 {
        self.rules[li as usize]
    }

    /// Iterates over `(local index, rule)`.
    pub fn rules(&self) -> impl Iterator<Item = (LocalIdx, &GroundRule)> {
        self.rules
            .iter()
            .enumerate()
            .map(move |(li, &ri)| (li as LocalIdx, &self.gp.rules[ri as usize]))
    }

    /// Rules with head literal `h`.
    pub fn rules_with_head(&self, h: GLit) -> &[LocalIdx] {
        self.by_head.get(&h).map_or(&[], Vec::as_slice)
    }

    /// Rules with `l` in the body.
    pub fn rules_with_body_lit(&self, l: GLit) -> &[LocalIdx] {
        self.by_body.get(&l).map_or(&[], Vec::as_slice)
    }

    /// Potential overrulers of rule `li`.
    pub fn overrulers(&self, li: LocalIdx) -> &[LocalIdx] {
        &self.overrulers[li as usize]
    }

    /// Potential defeaters of rule `li`.
    pub fn defeaters(&self, li: LocalIdx) -> &[LocalIdx] {
        &self.defeaters[li as usize]
    }

    /// Rules that rule `li` can overrule.
    pub fn victims_overrule(&self, li: LocalIdx) -> &[LocalIdx] {
        &self.victims_overrule[li as usize]
    }

    /// Rules that rule `li` can defeat.
    pub fn victims_defeat(&self, li: LocalIdx) -> &[LocalIdx] {
        &self.victims_defeat[li as usize]
    }

    /// Structural statistics of the view — conflict diagnostics for
    /// tooling (the `olp check` CLI prints these).
    pub fn stats(&self) -> ViewStats {
        ViewStats {
            rules: self.rules.len(),
            overrule_edges: self.overrulers.iter().map(Vec::len).sum(),
            defeat_edges: self.defeaters.iter().map(Vec::len).sum(),
        }
    }

    /// Mutual-defeat pairs: `(head literal, rule, contradictor)` where
    /// each rule is a potential defeater of the other — the situations
    /// that leave atoms undefined under unresolved conflict (Fig. 2).
    /// A KB lint: every pair is a place where the hierarchy fails to
    /// rank two contradictory opinions. Each unordered pair is reported
    /// once, keyed by the positive head.
    pub fn mutual_defeats(&self) -> Vec<(GLit, LocalIdx, LocalIdx)> {
        // Defeat is symmetric (equal/incomparable components both ways,
        // complementary heads both ways), so iterating from the
        // positive-headed side visits every pair exactly once.
        let mut out = Vec::new();
        for (li, r) in self.rules() {
            if !r.head.is_pos() {
                continue;
            }
            for &d in self.defeaters(li) {
                debug_assert!(self.defeaters(d).contains(&li), "defeat is symmetric");
                out.push((r.head, li, d));
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    // ---- Definition 2 statuses --------------------------------------

    /// `B(r) ⊆ I`.
    pub fn applicable(&self, li: LocalIdx, i: &Interpretation) -> bool {
        self.rule(li).body.iter().all(|&b| i.holds(b))
    }

    /// Applicable and `H(r) ∈ I`.
    pub fn applied(&self, li: LocalIdx, i: &Interpretation) -> bool {
        i.holds(self.rule(li).head) && self.applicable(li, i)
    }

    /// Some body literal's complement is in `I`.
    pub fn blocked(&self, li: LocalIdx, i: &Interpretation) -> bool {
        self.rule(li).body.iter().any(|&b| i.holds(b.complement()))
    }

    /// Some non-blocked rule in a strictly lower component has the
    /// complementary head.
    pub fn overruled(&self, li: LocalIdx, i: &Interpretation) -> bool {
        self.overrulers[li as usize]
            .iter()
            .any(|&a| !self.blocked(a, i))
    }

    /// Some non-blocked rule in the same or an incomparable component
    /// has the complementary head.
    pub fn defeated(&self, li: LocalIdx, i: &Interpretation) -> bool {
        self.defeaters[li as usize]
            .iter()
            .any(|&a| !self.blocked(a, i))
    }

    /// Def. 3(a)'s stronger overruling: overruled by an **applied**
    /// rule.
    pub fn overruled_by_applied(&self, li: LocalIdx, i: &Interpretation) -> bool {
        self.overrulers[li as usize]
            .iter()
            .any(|&a| self.applied(a, i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olp_core::World;
    use olp_ground::{ground_exhaustive, GroundConfig};
    use olp_parser::{parse_ground_literal, parse_program};

    /// Grounds Fig. 1 and returns (world, ground program).
    fn fig1() -> (World, GroundProgram) {
        let mut w = World::new();
        let p = parse_program(
            &mut w,
            "module c2 {
                bird(penguin). bird(pigeon).
                fly(X) :- bird(X).
                -ground_animal(X) :- bird(X).
             }
             module c1 < c2 {
                ground_animal(penguin).
                -fly(X) :- ground_animal(X).
             }",
        )
        .unwrap();
        let g = ground_exhaustive(&mut w, &p, &GroundConfig::default()).unwrap();
        (w, g)
    }

    /// The paper's total interpretation I1 for P1 in C1 (Example 2).
    fn i1(w: &mut World) -> Interpretation {
        Interpretation::from_literals(
            [
                "bird(pigeon)",
                "bird(penguin)",
                "ground_animal(penguin)",
                "-ground_animal(pigeon)",
                "fly(pigeon)",
                "-fly(penguin)",
            ]
            .iter()
            .map(|s| parse_ground_literal(w, s).unwrap()),
        )
        .unwrap()
    }

    fn find_rule(w: &mut World, v: &View, head: &str, body: &[&str]) -> LocalIdx {
        let h = parse_ground_literal(w, head).unwrap();
        let body: Vec<GLit> = body
            .iter()
            .map(|s| parse_ground_literal(w, s).unwrap())
            .collect();
        v.rules()
            .find(|(_, r)| {
                r.head == h && {
                    let mut b: Vec<GLit> = r.body.to_vec();
                    let mut want = body.clone();
                    b.sort_unstable();
                    want.sort_unstable();
                    b == want
                }
            })
            .map_or_else(|| panic!("rule {head} :- {body:?} not found"), |(li, _)| li)
    }

    #[test]
    fn example2_statuses_in_c1() {
        // Example 2 of the paper, checked verbatim.
        let (mut w, g) = fig1();
        let c1 = CompId(1); // parse order: c2 is component 0, c1 is 1
        assert_eq!(g.view(c1).len(), 9);
        let v = View::new(&g, c1);
        let i = i1(&mut w);

        // `fly(penguin) :- bird(penguin)` is applicable but overruled by
        // the applied rule `-fly(penguin) :- ground_animal(penguin)`.
        let fly_peng = find_rule(&mut w, &v, "fly(penguin)", &["bird(penguin)"]);
        assert!(v.applicable(fly_peng, &i));
        assert!(!v.applied(fly_peng, &i));
        assert!(v.overruled(fly_peng, &i));
        assert!(v.overruled_by_applied(fly_peng, &i));
        assert!(!v.defeated(fly_peng, &i));

        let nofly_peng = find_rule(&mut w, &v, "-fly(penguin)", &["ground_animal(penguin)"]);
        assert!(v.applied(nofly_peng, &i));
        assert!(!v.overruled(nofly_peng, &i));

        // `-fly(pigeon) :- ground_animal(pigeon)` is both blocked and
        // non-applicable.
        let nofly_pig = find_rule(&mut w, &v, "-fly(pigeon)", &["ground_animal(pigeon)"]);
        assert!(v.blocked(nofly_pig, &i));
        assert!(!v.applicable(nofly_pig, &i));
    }

    #[test]
    fn example2_defeating_in_collapsed_program() {
        // P̂1: all rules in a single component — overruling becomes
        // mutual defeating.
        let mut w = World::new();
        let p = parse_program(
            &mut w,
            "bird(penguin). bird(pigeon).
             fly(X) :- bird(X).
             -ground_animal(X) :- bird(X).
             ground_animal(penguin).
             -fly(X) :- ground_animal(X).",
        )
        .unwrap();
        let g = ground_exhaustive(&mut w, &p, &GroundConfig::default()).unwrap();
        let v = View::new(&g, CompId(0));
        let i = i1(&mut w);

        let fly_peng = find_rule(&mut w, &v, "fly(penguin)", &["bird(penguin)"]);
        assert!(v.applicable(fly_peng, &i));
        assert!(v.defeated(fly_peng, &i), "defeated by -fly(penguin) rule");
        assert!(!v.overruled(fly_peng, &i), "no strictly lower component");

        // The applied fact ground_animal(penguin) is defeated by the
        // applicable rule -ground_animal(penguin) :- bird(penguin).
        let ga_fact = find_rule(&mut w, &v, "ground_animal(penguin)", &[]);
        assert!(v.applied(ga_fact, &i));
        assert!(v.defeated(ga_fact, &i));
    }

    #[test]
    fn view_of_upper_component_ignores_lower_rules() {
        let (mut w, g) = fig1();
        let c2 = CompId(0);
        let v = View::new(&g, c2);
        assert_eq!(v.len(), 6);
        // In C2's own view there is no -fly rule at all: fly(penguin)
        // has no attackers.
        let fly_peng = find_rule(&mut w, &v, "fly(penguin)", &["bird(penguin)"]);
        assert!(v.overrulers(fly_peng).is_empty());
        assert!(v.defeaters(fly_peng).is_empty());
    }

    #[test]
    fn attack_lists_are_transposed_consistently() {
        let (_, g) = fig1();
        let v = View::new(&g, CompId(1));
        for (li, _) in v.rules() {
            for &a in v.overrulers(li) {
                assert!(v.victims_overrule(a).contains(&li));
            }
            for &a in v.defeaters(li) {
                assert!(v.victims_defeat(a).contains(&li));
            }
        }
    }

    #[test]
    fn mutual_defeats_lint() {
        // Fig. 2: rich/poor facts and rules defeat across incomparable
        // components; Fig. 1's ordered version has no mutual defeats.
        let mut w = World::new();
        let p = parse_program(
            &mut w,
            "module c3 { rich(mimmo). -poor(X) :- rich(X). }
             module c2 { poor(mimmo). -rich(X) :- poor(X). }
             module c1 < c2, c3 { free_ticket(X) :- poor(X). }",
        )
        .unwrap();
        let g = ground_exhaustive(&mut w, &p, &GroundConfig::default()).unwrap();
        let conflicts = View::new(&g, CompId(2)).mutual_defeats();
        // rich(mimmo) and poor(mimmo) are each contested.
        let heads: Vec<String> = conflicts.iter().map(|&(h, _, _)| w.glit_str(h)).collect();
        assert!(heads.contains(&"rich(mimmo)".to_string()), "{heads:?}");
        assert!(heads.contains(&"poor(mimmo)".to_string()));

        let (_, g1) = {
            let mut w1 = World::new();
            let p1 = parse_program(
                &mut w1,
                "module c2 { bird(t). fly(X) :- bird(X). }
                 module c1 < c2 { -fly(X) :- bird(X). }",
            )
            .unwrap();
            let g1 = ground_exhaustive(&mut w1, &p1, &GroundConfig::default()).unwrap();
            (w1, g1)
        };
        assert!(
            View::new(&g1, CompId(1)).mutual_defeats().is_empty(),
            "ordered contradiction is overruling, not mutual defeat"
        );
    }

    #[test]
    fn blocked_requires_complement_not_absence() {
        let (mut w, g) = fig1();
        let v = View::new(&g, CompId(1));
        let empty = Interpretation::new();
        let nofly_pig = find_rule(&mut w, &v, "-fly(pigeon)", &["ground_animal(pigeon)"]);
        // Under the empty interpretation nothing is blocked.
        assert!(!v.blocked(nofly_pig, &empty));
        assert!(!v.applicable(nofly_pig, &empty));
    }
}
