//! `olp-workload` — standalone load generator for `olp serve`.
//!
//! ```text
//! olp-workload --addr HOST:PORT [FLAGS]        drive an already-running server
//! olp-workload --server-bin PATH [FLAGS]       spawn `PATH serve` on a generated
//!                                              mutation-stream program, drive it,
//!                                              shut it down
//! flags:
//!   --conns N          concurrent connections (default 4)
//!   --secs S           run length in seconds, fractions allowed (default 2)
//!   --write-ratio F    fraction of ops that mutate (default 0.1)
//!   --write-pct P      same knob as a percentage (0-100); the report
//!                      splits read and write latency percentiles either way
//!   --seed N           RNG seed (default 42)
//!   --n-base N         base ancestor-chain length (default 64)
//!   --strict           exit 1 unless ops > 0, errors == 0, and no
//!                      epoch regression was observed (the CI smoke gate)
//! ```
//!
//! Prints one JSON report object to stdout; the human summary goes to
//! stderr so pipelines can consume the JSON directly.

use olp_workload::loadgen::{run_load, LoadCfg};
use olp_workload::{mutation_stream, MutationCfg};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2)
}

struct SpawnedServer {
    child: Child,
    addr: SocketAddr,
    _program: tempfile::TempPath,
}

/// Minimal scoped temp-file helper (the container has no tempfile
/// crate): the file is deleted when the path guard drops.
mod tempfile {
    use std::path::PathBuf;

    pub struct TempPath(pub PathBuf);

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }
}

fn spawn_server(bin: &str, n_base: usize, seed: u64) -> SpawnedServer {
    let (base, _) = mutation_stream(
        &MutationCfg {
            n_base,
            n_mutations: 0,
            ..MutationCfg::default()
        },
        seed,
    );
    let program = format!("module main {{\n{base}}}\n");
    let path = std::env::temp_dir().join(format!("olp_workload_{}_{seed}.olp", std::process::id()));
    if std::fs::write(&path, program).is_err() {
        die(&format!("cannot write program file {}", path.display()));
    }
    let guard = tempfile::TempPath(path.clone());
    let mut child = match Command::new(bin)
        .arg("serve")
        .arg(&path)
        .args(["--listen", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
    {
        Ok(c) => c,
        Err(e) => die(&format!("cannot spawn {bin}: {e}")),
    };
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        match lines.next() {
            Some(Ok(line)) => {
                if let Some(a) = line.strip_prefix("listening on ") {
                    match a.trim().parse() {
                        Ok(addr) => break addr,
                        Err(_) => die(&format!("unparseable listen address `{a}`")),
                    }
                }
            }
            _ => die("server exited before printing its listen address"),
        }
    };
    // Keep draining stdout in the background so the server never
    // blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    SpawnedServer {
        child,
        addr,
        _program: guard,
    }
}

fn shutdown_server(mut s: SpawnedServer) {
    if let Ok(mut stream) = TcpStream::connect(s.addr) {
        let _ = stream.write_all(b"{\"cmd\":\"shutdown\"}\n");
        let mut line = String::new();
        let _ = BufReader::new(&stream).read_line(&mut line);
    }
    let _ = s.child.wait();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr: Option<SocketAddr> = None;
    let mut server_bin: Option<String> = None;
    let mut cfg = LoadCfg::default();
    let mut strict = false;
    let mut i = 0;
    while i < args.len() {
        let val = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .cloned()
                .unwrap_or_else(|| die(&format!("{} requires a value", args[*i - 1])))
        };
        match args[i].as_str() {
            "--addr" => {
                let v = val(&mut i);
                addr = Some(
                    v.parse()
                        .unwrap_or_else(|_| die(&format!("bad --addr `{v}`"))),
                );
            }
            "--server-bin" => server_bin = Some(val(&mut i)),
            "--conns" => {
                cfg.conns = val(&mut i).parse().unwrap_or_else(|_| die("bad --conns"));
            }
            "--secs" => {
                let s: f64 = val(&mut i).parse().unwrap_or_else(|_| die("bad --secs"));
                cfg.duration = Duration::from_secs_f64(s.max(0.0));
            }
            "--write-ratio" => {
                cfg.write_ratio = val(&mut i)
                    .parse()
                    .unwrap_or_else(|_| die("bad --write-ratio"));
            }
            "--write-pct" => {
                let pct: f64 = val(&mut i)
                    .parse()
                    .unwrap_or_else(|_| die("bad --write-pct"));
                if !(0.0..=100.0).contains(&pct) {
                    die("--write-pct must be in 0..=100");
                }
                cfg.write_ratio = pct / 100.0;
            }
            "--seed" => {
                cfg.seed = val(&mut i).parse().unwrap_or_else(|_| die("bad --seed"));
            }
            "--n-base" => {
                cfg.n_base = val(&mut i).parse().unwrap_or_else(|_| die("bad --n-base"));
            }
            "--strict" => strict = true,
            other => die(&format!("unknown flag `{other}` (see the crate docs)")),
        }
        i += 1;
    }
    let spawned = match (&addr, &server_bin) {
        (Some(_), Some(_)) => die("--addr and --server-bin are mutually exclusive"),
        (None, None) => die("one of --addr or --server-bin is required"),
        (Some(_), None) => None,
        (None, Some(bin)) => Some(spawn_server(bin, cfg.n_base, cfg.seed)),
    };
    let target = addr.unwrap_or_else(|| spawned.as_ref().expect("spawned").addr);

    let report = run_load(target, &cfg);

    if let Some(s) = spawned {
        shutdown_server(s);
    }

    eprintln!("{}", report.summary());
    println!(
        "{{\"conns\": {}, \"secs\": {:.3}, \"write_ratio\": {}, \"seed\": {}, \
         \"ops\": {}, \"reads\": {}, \"writes\": {}, \"busy\": {}, \"errors\": {}, \
         \"epoch_regressions\": {}, \"throughput_ops_per_sec\": {:.1}, \
         \"latency_us\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}, \
         \"read_latency_us\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}, \
         \"write_latency_us\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}}}",
        cfg.conns,
        report.elapsed.as_secs_f64(),
        cfg.write_ratio,
        cfg.seed,
        report.ops,
        report.reads,
        report.writes,
        report.busy,
        report.errors,
        report.epoch_regressions,
        report.throughput(),
        report.latency_us(0.5),
        report.latency_us(0.95),
        report.latency_us(0.99),
        report.max_latency_us(),
        report.read_latency_us(0.5),
        report.read_latency_us(0.95),
        report.read_latency_us(0.99),
        report.max_read_latency_us(),
        report.write_latency_us(0.5),
        report.write_latency_us(0.95),
        report.write_latency_us(0.99),
        report.max_write_latency_us(),
    );

    if strict && (report.ops == 0 || report.errors > 0 || report.epoch_regressions > 0) {
        eprintln!(
            "strict gate FAILED: ops={} errors={} epoch_regressions={}",
            report.ops, report.errors, report.epoch_regressions
        );
        std::process::exit(1);
    }
}
