//! Load generator for the `olp serve` TCP protocol.
//!
//! Drives an already-listening server with `conns` concurrent
//! connections issuing a seeded mix of reads (`truth` queries over the
//! [`super::mutation_stream`] ancestor chain) and writes
//! (`assert`/`retract` of `parent` edges, connection-unique so streams
//! never collide), and reports throughput plus latency percentiles.
//! The client is pure `std::net`; responses are single-line JSON
//! checked structurally (an `"ok":true` prefix and a monotone `epoch`
//! field), so the generator has no dependency on the server crate.
//!
//! Used by the `olp-workload` binary (standalone runs and the CI
//! smoke) and by the B12 section of the experiments binary
//! (`BENCH_server.json`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Parameters for [`run_load`].
#[derive(Debug, Clone)]
pub struct LoadCfg {
    /// Concurrent client connections.
    pub conns: usize,
    /// Wall-clock run length.
    pub duration: Duration,
    /// Fraction of operations that are writes (`0.0` = read-only).
    pub write_ratio: f64,
    /// RNG seed; connection `i` derives its stream from `seed + i`.
    pub seed: u64,
    /// Object queries and mutations target (the mutation-stream base
    /// program serves `main`).
    pub object: String,
    /// Size of the served base ancestor chain; reads probe
    /// `anc(a0, a{1..n_base})`.
    pub n_base: usize,
}

impl Default for LoadCfg {
    fn default() -> Self {
        Self {
            conns: 4,
            duration: Duration::from_secs(2),
            write_ratio: 0.1,
            seed: 42,
            object: "main".to_string(),
            n_base: 64,
        }
    }
}

/// Aggregated outcome of a [`run_load`] run.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Total operations that got a response.
    pub ops: u64,
    /// Read operations (`truth` queries).
    pub reads: u64,
    /// Applied write operations (`assert`/`retract` acknowledged ok).
    pub writes: u64,
    /// `busy` responses (admission control), not counted as errors.
    pub busy: u64,
    /// Protocol errors: unparseable frames, `ok:false` responses other
    /// than `busy`, or connection failures mid-run.
    pub errors: u64,
    /// Responses whose `epoch` went backwards on one connection — a
    /// snapshot-isolation violation; must stay 0.
    pub epoch_regressions: u64,
    /// Wall-clock time actually spent.
    pub elapsed: Duration,
    /// Per-op latencies, sorted ascending, microseconds.
    latencies_us: Vec<u64>,
    /// Read-op latencies only (`truth` queries), sorted ascending.
    read_latencies_us: Vec<u64>,
    /// Write-op latencies only (`assert`/`retract`), sorted ascending.
    write_latencies_us: Vec<u64>,
}

/// The `q`-quantile of an ascending-sorted latency vector; 0 when
/// nothing was measured.
fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    sorted[idx]
}

impl LoadReport {
    /// Operations per second over the run.
    pub fn throughput(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// The `q`-quantile latency over all operations in microseconds
    /// (`0.5` = p50); 0 when nothing was measured.
    pub fn latency_us(&self, q: f64) -> u64 {
        quantile(&self.latencies_us, q)
    }

    /// The `q`-quantile latency over read operations only. Reads ride
    /// the snapshot path; their tail is the number to watch when the
    /// writer is busy patching arenas.
    pub fn read_latency_us(&self, q: f64) -> u64 {
        quantile(&self.read_latencies_us, q)
    }

    /// The `q`-quantile latency over write operations only (the full
    /// mutate → revalidate → publish round-trip).
    pub fn write_latency_us(&self, q: f64) -> u64 {
        quantile(&self.write_latencies_us, q)
    }

    /// Maximum observed latency in microseconds.
    pub fn max_latency_us(&self) -> u64 {
        self.latencies_us.last().copied().unwrap_or(0)
    }

    /// Maximum observed read latency in microseconds.
    pub fn max_read_latency_us(&self) -> u64 {
        self.read_latencies_us.last().copied().unwrap_or(0)
    }

    /// Maximum observed write latency in microseconds.
    pub fn max_write_latency_us(&self) -> u64 {
        self.write_latencies_us.last().copied().unwrap_or(0)
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} ops in {:.2?} ({:.0} op/s): {} reads, {} writes, {} busy, {} errors; \
             p50 {}us p95 {}us p99 {}us max {}us \
             (read p50 {}us p99 {}us / write p50 {}us p99 {}us)",
            self.ops,
            self.elapsed,
            self.throughput(),
            self.reads,
            self.writes,
            self.busy,
            self.errors,
            self.latency_us(0.5),
            self.latency_us(0.95),
            self.latency_us(0.99),
            self.max_latency_us(),
            self.read_latency_us(0.5),
            self.read_latency_us(0.99),
            self.write_latency_us(0.5),
            self.write_latency_us(0.99),
        )
    }
}

/// Extracts the integer value of `"key":N` from a single-line JSON
/// response without a full parser.
fn field_u64(resp: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = resp.find(&needle)? + needle.len();
    let rest = &resp[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// What one connection contributes back to the aggregate.
#[derive(Debug, Default)]
struct ConnOutcome {
    ops: u64,
    reads: u64,
    writes: u64,
    busy: u64,
    errors: u64,
    epoch_regressions: u64,
    latencies_us: Vec<u64>,
    read_latencies_us: Vec<u64>,
    write_latencies_us: Vec<u64>,
}

fn drive_conn(addr: SocketAddr, cfg: &LoadCfg, conn_id: usize, deadline: Instant) -> ConnOutcome {
    let mut out = ConnOutcome::default();
    let stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(_) => {
            out.errors += 1;
            return out;
        }
    };
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            out.errors += 1;
            return out;
        }
    });
    let mut writer = stream;
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(conn_id as u64));
    // Edges this connection asserted and has not yet retracted.
    let mut live: Vec<String> = Vec::new();
    let mut last_epoch: u64 = 0;
    let mut k = 0usize;
    while Instant::now() < deadline {
        let is_write = rng.gen_bool(cfg.write_ratio.clamp(0.0, 1.0));
        let req = if is_write {
            if !live.is_empty() && rng.gen_bool(0.5) {
                let rule = live.swap_remove(rng.gen_range(0..live.len()));
                format!(
                    "{{\"cmd\":\"retract\",\"object\":\"{}\",\"rule\":\"{rule}\"}}",
                    cfg.object
                )
            } else {
                let rule = format!("parent(lc{conn_id}_{k}_a, lc{conn_id}_{k}_b).");
                k += 1;
                live.push(rule.clone());
                format!(
                    "{{\"cmd\":\"assert\",\"object\":\"{}\",\"rule\":\"{rule}\"}}",
                    cfg.object
                )
            }
        } else {
            let j = rng.gen_range(1..cfg.n_base.max(2));
            format!(
                "{{\"cmd\":\"truth\",\"object\":\"{}\",\"query\":\"anc(a0, a{j})\"}}",
                cfg.object
            )
        };
        let start = Instant::now();
        if writer.write_all(req.as_bytes()).is_err() || writer.write_all(b"\n").is_err() {
            out.errors += 1;
            return out;
        }
        let mut resp = String::new();
        match reader.read_line(&mut resp) {
            Ok(n) if n > 0 => {}
            _ => {
                out.errors += 1;
                return out;
            }
        }
        let lat = start.elapsed().as_micros() as u64;
        out.ops += 1;
        out.latencies_us.push(lat);
        if is_write {
            out.write_latencies_us.push(lat);
        } else {
            out.read_latencies_us.push(lat);
        }
        let resp = resp.trim_end();
        if resp.starts_with("{\"ok\":true") {
            if is_write {
                out.writes += 1;
            } else {
                out.reads += 1;
            }
        } else if resp.contains("\"error\":\"busy\"") {
            out.busy += 1;
        } else {
            out.errors += 1;
        }
        match field_u64(resp, "epoch") {
            Some(e) if e < last_epoch => out.epoch_regressions += 1,
            Some(e) => last_epoch = e,
            None => out.errors += 1,
        }
    }
    out
}

/// Runs the mixed read/write workload against a listening server and
/// aggregates the per-connection outcomes. Latencies are merged and
/// sorted; `epoch_regressions` must come back 0 on a correct server.
pub fn run_load(addr: SocketAddr, cfg: &LoadCfg) -> LoadReport {
    let started = Instant::now();
    let deadline = started + cfg.duration;
    let outcomes: Vec<ConnOutcome> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.conns.max(1))
            .map(|i| s.spawn(move || drive_conn(addr, cfg, i, deadline)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });
    let mut report = LoadReport {
        elapsed: started.elapsed(),
        ..LoadReport::default()
    };
    for o in outcomes {
        report.ops += o.ops;
        report.reads += o.reads;
        report.writes += o.writes;
        report.busy += o.busy;
        report.errors += o.errors;
        report.epoch_regressions += o.epoch_regressions;
        report.latencies_us.extend(o.latencies_us);
        report.read_latencies_us.extend(o.read_latencies_us);
        report.write_latencies_us.extend(o.write_latencies_us);
    }
    report.latencies_us.sort_unstable();
    report.read_latencies_us.sort_unstable();
    report.write_latencies_us.sort_unstable();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_extraction_and_percentiles() {
        assert_eq!(
            field_u64(r#"{"ok":true,"epoch":17,"truth":"true"}"#, "epoch"),
            Some(17)
        );
        assert_eq!(field_u64(r#"{"ok":false}"#, "epoch"), None);
        let r = LoadReport {
            ops: 4,
            latencies_us: vec![10, 20, 30, 100],
            read_latencies_us: vec![10, 20],
            write_latencies_us: vec![30, 100],
            elapsed: Duration::from_secs(1),
            ..LoadReport::default()
        };
        assert_eq!(r.latency_us(0.0), 10);
        assert_eq!(r.latency_us(1.0), 100);
        assert_eq!(r.max_latency_us(), 100);
        assert!((r.throughput() - 4.0).abs() < 1e-6);
        // Split percentiles answer from their own populations.
        assert_eq!(r.read_latency_us(1.0), 20);
        assert_eq!(r.write_latency_us(0.0), 30);
        assert_eq!(r.max_read_latency_us(), 20);
        assert_eq!(r.max_write_latency_us(), 100);
        // Empty splits stay 0 rather than panicking.
        let empty = LoadReport::default();
        assert_eq!(empty.read_latency_us(0.5), 0);
        assert_eq!(empty.max_write_latency_us(), 0);
    }
}
