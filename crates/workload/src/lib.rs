//! # olp-workload — synthetic workload generators
//!
//! Deterministic (seeded) program generators for the benchmark suite
//! and the property-test suites. Each generator scales one of the
//! paper's motivating shapes:
//!
//! * [`taxonomy_chain`] — Fig. 1 at size N: a specialisation chain of
//!   components carving nested exception classes out of a species
//!   population (exceptions, exceptions-to-exceptions, …). The expected
//!   answer per species is analytically known, so benches double as
//!   correctness checks.
//! * [`defeating_pairs`] — Fig. 2 at size N: N incomparable
//!   expert-pairs asserting contradictory facts, all inherited by one
//!   consumer — a pure stress test of defeat bookkeeping.
//! * [`defeating_cliques`] — k disjoint Fig. 2-style choice cliques
//!   (pro/con pair + two consumer rules each); the component-wise
//!   evaluation stress test, where the model set is a cartesian
//!   product of per-clique choices.
//! * [`expert_panel`] — Fig. 3 at size N: numeric-threshold loan
//!   experts with refinement edges.
//! * [`ancestor`] — Example 6 over generated `parent` relations
//!   (chain / binary tree / random graph).
//! * [`random_ordered`] / [`random_seminegative`] / [`random_negative`]
//!   — seeded random propositional programs for the theorem-validation
//!   property tests (T1–T5 in DESIGN.md).
//!
//! ```
//! use olp_core::World;
//! use olp_workload::{taxonomy_chain, taxonomy_expected_fly};
//!
//! let mut w = World::new();
//! let prog = taxonomy_chain(&mut w, 32, 3);
//! assert_eq!(prog.components.len(), 4);
//! // The generator's analytic ground truth doubles as a correctness
//! // oracle for the benchmarks:
//! assert!(taxonomy_expected_fly(32, 3, 31));   // uncovered: flies
//! assert!(!taxonomy_expected_fly(32, 3, 0));   // deepest odd layer
//! ```

#![warn(missing_docs)]

pub mod loadgen;

use olp_core::{BodyItem, CmpOp, Literal, OrderedProgram, Rule, Sign, Term, World};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds `pred(args…)` as a literal.
fn lit(world: &mut World, sign: Sign, name: &str, args: Vec<Term>) -> Literal {
    let pred = world.pred(name, args.len() as u32);
    Literal { sign, pred, args }
}

fn const_term(world: &mut World, name: &str) -> Term {
    Term::Const(world.syms.intern(name))
}

fn var(world: &mut World, name: &str) -> Term {
    Term::Var(world.syms.intern(name))
}

/// Fig. 1 scaled: `n_species` birds; `n_layers` nested exception
/// classes (layer at depth `d` covers the first `n_species / 2^d`
/// species and alternates the flying verdict). Returns the program;
/// component 0 is the most specific (query there).
///
/// Ground truth: see [`taxonomy_expected_fly`].
pub fn taxonomy_chain(world: &mut World, n_species: usize, n_layers: usize) -> OrderedProgram {
    let mut prog = OrderedProgram::new();
    // comps[0] = most specific … comps[n_layers] = most general.
    let comps: Vec<_> = (0..=n_layers)
        .map(|i| {
            let sym = world.syms.intern(&format!("layer{i}"));
            prog.add_component(sym)
        })
        .collect();
    for w in comps.windows(2) {
        prog.add_edge(w[0], w[1]);
    }
    let general = comps[n_layers];
    for s in 0..n_species {
        let t = const_term(world, &format!("s{s}"));
        let head = lit(world, Sign::Pos, "bird", vec![t]);
        prog.add_rule(general, Rule::fact(head));
    }
    let x = var(world, "X");
    let fly_head = lit(world, Sign::Pos, "fly", vec![x.clone()]);
    let bird_body = lit(world, Sign::Pos, "bird", vec![x.clone()]);
    prog.add_rule(general, Rule::new(fly_head, vec![BodyItem::Lit(bird_body)]));
    // Closed-world defaults for class membership, in the general layer
    // so the membership facts (in strictly lower layers) overrule them.
    // Without these, an exception rule over an underivable class would
    // stay non-blocked and suppress the verdict for every species.
    for depth in 1..=n_layers {
        let head = lit(world, Sign::Neg, &format!("class{depth}"), vec![x.clone()]);
        let body = lit(world, Sign::Pos, "bird", vec![x.clone()]);
        prog.add_rule(general, Rule::new(head, vec![BodyItem::Lit(body)]));
    }
    for i in (0..n_layers).rev() {
        let depth = n_layers - i; // 1 = directly below the general layer
        let cover = n_species >> depth;
        let class = format!("class{depth}");
        for s in 0..cover {
            let t = const_term(world, &format!("s{s}"));
            let head = lit(world, Sign::Pos, &class, vec![t]);
            prog.add_rule(comps[i], Rule::fact(head));
        }
        let sign = if depth % 2 == 1 { Sign::Neg } else { Sign::Pos };
        let head = lit(world, sign, "fly", vec![x.clone()]);
        let body = lit(world, Sign::Pos, &class, vec![x.clone()]);
        prog.add_rule(comps[i], Rule::new(head, vec![BodyItem::Lit(body)]));
    }
    prog
}

/// The analytically expected verdict for species `s` in
/// [`taxonomy_chain`]: `true` = flies.
pub fn taxonomy_expected_fly(n_species: usize, n_layers: usize, s: usize) -> bool {
    let mut verdict = true;
    for depth in 1..=n_layers {
        if s < n_species >> depth {
            verdict = depth % 2 == 0;
        }
    }
    verdict
}

/// Fig. 2 scaled: `n_pairs` pairs of incomparable components asserting
/// `p_i.` and `-p_i.`, plus one consumer below all of them with
/// `q_i ← p_i`. In the consumer's view everything is defeated: the
/// least model is empty.
pub fn defeating_pairs(world: &mut World, n_pairs: usize) -> OrderedProgram {
    let mut prog = OrderedProgram::new();
    let consumer_sym = world.syms.intern("consumer");
    let consumer = prog.add_component(consumer_sym);
    for i in 0..n_pairs {
        let a_sym = world.syms.intern(&format!("pro{i}"));
        let a = prog.add_component(a_sym);
        let b_sym = world.syms.intern(&format!("con{i}"));
        let b = prog.add_component(b_sym);
        prog.add_edge(consumer, a);
        prog.add_edge(consumer, b);
        let p = format!("p{i}");
        let head_pos = lit(world, Sign::Pos, &p, vec![]);
        prog.add_rule(a, Rule::fact(head_pos));
        let head_neg = lit(world, Sign::Neg, &p, vec![]);
        prog.add_rule(b, Rule::fact(head_neg));
        let q = lit(world, Sign::Pos, &format!("q{i}"), vec![]);
        let body = lit(world, Sign::Pos, &p, vec![]);
        prog.add_rule(consumer, Rule::new(q, vec![BodyItem::Lit(body)]));
    }
    prog
}

/// `k` independent 3-atom "defeating cliques": clique `i` has an
/// incomparable pro/con pair asserting `p_i.` / `-p_i.`, plus consumer
/// rules `q_i ← p_i` and `r_i ← -p_i`. The cliques share no atoms, so
/// the dependency graph splits into `k` independent groups: monolithic
/// enumeration must interleave the per-clique choices (search effort
/// multiplies across cliques), while component-wise evaluation solves
/// each clique separately and combines the per-clique model sets as a
/// cartesian product. This is the `decomp` benchmark workload.
pub fn defeating_cliques(world: &mut World, k: usize) -> OrderedProgram {
    let mut prog = OrderedProgram::new();
    let consumer_sym = world.syms.intern("consumer");
    let consumer = prog.add_component(consumer_sym);
    for i in 0..k {
        let pro_sym = world.syms.intern(&format!("pro{i}"));
        let pro = prog.add_component(pro_sym);
        let con_sym = world.syms.intern(&format!("con{i}"));
        let con = prog.add_component(con_sym);
        prog.add_edge(consumer, pro);
        prog.add_edge(consumer, con);
        let p = format!("p{i}");
        let head_pos = lit(world, Sign::Pos, &p, vec![]);
        prog.add_rule(pro, Rule::fact(head_pos));
        let head_neg = lit(world, Sign::Neg, &p, vec![]);
        prog.add_rule(con, Rule::fact(head_neg));
        let q = lit(world, Sign::Pos, &format!("q{i}"), vec![]);
        let p_pos = lit(world, Sign::Pos, &p, vec![]);
        prog.add_rule(consumer, Rule::new(q, vec![BodyItem::Lit(p_pos)]));
        let r = lit(world, Sign::Pos, &format!("r{i}"), vec![]);
        let p_neg = lit(world, Sign::Neg, &p, vec![]);
        prog.add_rule(consumer, Rule::new(r, vec![BodyItem::Lit(p_neg)]));
    }
    prog
}

/// Fig. 3 scaled: `n_experts` loan experts above a `myself` component
/// (component 0). Even experts are pro-loan on `inflation`; odd
/// experts are anti-loan on `loan_rate` and each is refined by a
/// subordinate pro-loan expert comparing both indicators (`X > Y + 2`,
/// as in the paper). `myself` holds the scenario facts.
pub fn expert_panel(
    world: &mut World,
    n_experts: usize,
    inflation: i64,
    loan_rate: i64,
) -> OrderedProgram {
    let mut prog = OrderedProgram::new();
    let myself_sym = world.syms.intern("myself");
    let myself = prog.add_component(myself_sym);
    let x = var(world, "X");
    let y = var(world, "Y");
    let mut anti_experts = Vec::new();
    for i in 0..n_experts {
        let e_sym = world.syms.intern(&format!("expert{i}"));
        let e = prog.add_component(e_sym);
        prog.add_edge(myself, e);
        let threshold = 10 + (i as i64 % 7);
        if i % 2 == 0 {
            let head = lit(world, Sign::Pos, "take_loan", vec![]);
            let body = lit(world, Sign::Pos, "inflation", vec![x.clone()]);
            let cmp = olp_core::Cmp {
                op: CmpOp::Gt,
                lhs: olp_core::Aexp::Term(x.clone()),
                rhs: olp_core::Aexp::Term(Term::Int(threshold)),
            };
            prog.add_rule(
                e,
                Rule::new(head, vec![BodyItem::Lit(body), BodyItem::Cmp(cmp)]),
            );
        } else {
            let head = lit(world, Sign::Neg, "take_loan", vec![]);
            let body = lit(world, Sign::Pos, "loan_rate", vec![x.clone()]);
            let cmp = olp_core::Cmp {
                op: CmpOp::Gt,
                lhs: olp_core::Aexp::Term(x.clone()),
                rhs: olp_core::Aexp::Term(Term::Int(threshold + 3)),
            };
            prog.add_rule(
                e,
                Rule::new(head, vec![BodyItem::Lit(body), BodyItem::Cmp(cmp)]),
            );
            anti_experts.push(i);
        }
    }
    // One refiner per anti-loan expert, subordinate to *every* anti-loan
    // expert: a refinement that only outranked its own expert would be
    // defeated by the other (incomparable) anti experts, leaving the
    // verdict undefined at larger panel sizes.
    for &i in &anti_experts {
        let r_sym = world.syms.intern(&format!("refiner{i}"));
        let refiner = prog.add_component(r_sym);
        prog.add_edge(myself, refiner);
        for &j in &anti_experts {
            let e = prog
                .component_by_name(world.syms.intern(&format!("expert{j}")))
                .expect("expert exists");
            prog.add_edge(refiner, e);
        }
        let head = lit(world, Sign::Pos, "take_loan", vec![]);
        let b1 = lit(world, Sign::Pos, "inflation", vec![x.clone()]);
        let b2 = lit(world, Sign::Pos, "loan_rate", vec![y.clone()]);
        let cmp = olp_core::Cmp {
            op: CmpOp::Gt,
            lhs: olp_core::Aexp::Term(x.clone()),
            rhs: olp_core::Aexp::Add(
                Box::new(olp_core::Aexp::Term(y.clone())),
                Box::new(olp_core::Aexp::Term(Term::Int(2))),
            ),
        };
        prog.add_rule(
            refiner,
            Rule::new(
                head,
                vec![BodyItem::Lit(b1), BodyItem::Lit(b2), BodyItem::Cmp(cmp)],
            ),
        );
    }
    let infl = lit(world, Sign::Pos, "inflation", vec![Term::Int(inflation)]);
    prog.add_rule(myself, Rule::fact(infl));
    let rate = lit(world, Sign::Pos, "loan_rate", vec![Term::Int(loan_rate)]);
    prog.add_rule(myself, Rule::fact(rate));
    prog
}

/// Shape of the generated `parent` relation for [`ancestor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphShape {
    /// `n0 → n1 → … → n_{k-1}`.
    Chain,
    /// Complete binary tree, edges parent→child.
    BinaryTree,
    /// `edges` random edges over the nodes (seeded).
    Random {
        /// Number of edges to draw.
        edges: usize,
        /// RNG seed.
        seed: u64,
    },
}

/// Example 6 scaled: the ancestor program over a generated `parent`
/// relation with `n` nodes.
pub fn ancestor(world: &mut World, shape: GraphShape, n: usize) -> OrderedProgram {
    let mut prog = OrderedProgram::new();
    let main_sym = world.syms.intern("main");
    let main = prog.add_component(main_sym);
    let edge = |world: &mut World, prog: &mut OrderedProgram, a: usize, b: usize| {
        let ta = const_term(world, &format!("n{a}"));
        let tb = const_term(world, &format!("n{b}"));
        let head = lit(world, Sign::Pos, "parent", vec![ta, tb]);
        prog.add_rule(main, Rule::fact(head));
    };
    match shape {
        GraphShape::Chain => {
            for i in 1..n {
                edge(world, &mut prog, i - 1, i);
            }
        }
        GraphShape::BinaryTree => {
            for i in 1..n {
                edge(world, &mut prog, (i - 1) / 2, i);
            }
        }
        GraphShape::Random { edges, seed } => {
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..edges {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                edge(world, &mut prog, a, b);
            }
        }
    }
    let x = var(world, "X");
    let y = var(world, "Y");
    let z = var(world, "Z");
    let h1 = lit(world, Sign::Pos, "anc", vec![x.clone(), y.clone()]);
    let b1 = lit(world, Sign::Pos, "parent", vec![x.clone(), y.clone()]);
    prog.add_rule(main, Rule::new(h1, vec![BodyItem::Lit(b1)]));
    let h2 = lit(world, Sign::Pos, "anc", vec![x.clone(), y.clone()]);
    let b2a = lit(world, Sign::Pos, "parent", vec![x.clone(), z.clone()]);
    let b2b = lit(world, Sign::Pos, "anc", vec![z.clone(), y.clone()]);
    prog.add_rule(
        main,
        Rule::new(h2, vec![BodyItem::Lit(b2a), BodyItem::Lit(b2b)]),
    );
    prog
}

/// Parameters for [`random_datalog`]: non-ground random programs over
/// unary/binary predicates.
#[derive(Debug, Clone)]
pub struct DatalogCfg {
    /// Number of constants (`k0…`).
    pub n_consts: usize,
    /// Number of unary predicates (`u0…`).
    pub n_unary: usize,
    /// Number of binary predicates (`b0…`).
    pub n_binary: usize,
    /// Number of ground facts.
    pub n_facts: usize,
    /// Number of non-ground rules.
    pub n_rules: usize,
    /// Probability of a negated head.
    pub neg_head_prob: f64,
    /// Probability each body literal is negative.
    pub neg_body_prob: f64,
    /// Number of components (edges chain them, most specific first).
    pub n_components: usize,
}

impl Default for DatalogCfg {
    fn default() -> Self {
        DatalogCfg {
            n_consts: 4,
            n_unary: 3,
            n_binary: 2,
            n_facts: 6,
            n_rules: 8,
            neg_head_prob: 0.3,
            neg_body_prob: 0.3,
            n_components: 2,
        }
    }
}

/// A random **safe** non-ground ordered program: every head variable
/// occurs in some body literal (rules are completed with a covering
/// positive unary literal when the random draw leaves a head variable
/// unbound). Used to exercise the grounders beyond the propositional
/// fragment.
pub fn random_datalog(world: &mut World, cfg: &DatalogCfg, seed: u64) -> OrderedProgram {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut prog = OrderedProgram::new();
    let comps: Vec<_> = (0..cfg.n_components.max(1))
        .map(|i| {
            let sym = world.syms.intern(&format!("c{i}"));
            prog.add_component(sym)
        })
        .collect();
    for w2 in comps.windows(2) {
        prog.add_edge(w2[0], w2[1]);
    }
    let var_names = ["X", "Y", "Z"];
    let rand_pred = |rng: &mut StdRng| -> (String, u32) {
        if rng.gen_range(0..cfg.n_unary + cfg.n_binary) < cfg.n_unary {
            (format!("u{}", rng.gen_range(0..cfg.n_unary)), 1)
        } else {
            (format!("b{}", rng.gen_range(0..cfg.n_binary)), 2)
        }
    };
    // Ground facts (always positive heads, spread across components).
    for _ in 0..cfg.n_facts {
        let (name, arity) = rand_pred(&mut rng);
        let args: Vec<Term> = (0..arity)
            .map(|_| const_term(world, &format!("k{}", rng.gen_range(0..cfg.n_consts))))
            .collect();
        let comp = comps[rng.gen_range(0..comps.len())];
        let head = lit(world, Sign::Pos, &name, args);
        prog.add_rule(comp, Rule::fact(head));
    }
    // Non-ground rules, forced safe.
    for _ in 0..cfg.n_rules {
        let (hname, harity) = rand_pred(&mut rng);
        let hsign = if rng.gen_bool(cfg.neg_head_prob) {
            Sign::Neg
        } else {
            Sign::Pos
        };
        let hargs: Vec<Term> = (0..harity)
            .map(|_| var(world, var_names[rng.gen_range(0..var_names.len())]))
            .collect();
        let mut body = Vec::new();
        let mut body_vars: Vec<olp_core::Sym> = Vec::new();
        for _ in 0..rng.gen_range(1..=2usize) {
            let (bname, barity) = rand_pred(&mut rng);
            let bsign = if rng.gen_bool(cfg.neg_body_prob) {
                Sign::Neg
            } else {
                Sign::Pos
            };
            let bargs: Vec<Term> = (0..barity)
                .map(|_| {
                    let v = var(world, var_names[rng.gen_range(0..var_names.len())]);
                    if let Term::Var(s) = v {
                        if !body_vars.contains(&s) {
                            body_vars.push(s);
                        }
                    }
                    v
                })
                .collect();
            body.push(BodyItem::Lit(lit(world, bsign, &bname, bargs)));
        }
        // Safety completion: cover unbound head variables.
        let mut head_vars = Vec::new();
        for t in &hargs {
            t.collect_vars(&mut head_vars);
        }
        for hv in head_vars {
            if !body_vars.contains(&hv) {
                let cover = lit(
                    world,
                    Sign::Pos,
                    &format!("u{}", rng.gen_range(0..cfg.n_unary)),
                    vec![Term::Var(hv)],
                );
                body.push(BodyItem::Lit(cover));
                body_vars.push(hv);
            }
        }
        let head = lit(world, hsign, &hname, hargs);
        let comp = comps[rng.gen_range(0..comps.len())];
        prog.add_rule(comp, Rule::new(head, body));
    }
    prog
}

/// Parameters for the random propositional generators.
#[derive(Debug, Clone)]
pub struct RandomCfg {
    /// Number of propositional atoms (`p0…`).
    pub n_atoms: usize,
    /// Number of rules.
    pub n_rules: usize,
    /// Maximum body length (uniform 0..=max).
    pub max_body: usize,
    /// Probability of a negated head (0 for seminegative programs).
    pub neg_head_prob: f64,
    /// Probability each body literal is negative.
    pub neg_body_prob: f64,
    /// Number of components (1 for flat programs).
    pub n_components: usize,
    /// Probability of an order edge `c_i < c_j` for each `i < j`.
    pub edge_prob: f64,
}

impl Default for RandomCfg {
    fn default() -> Self {
        RandomCfg {
            n_atoms: 6,
            n_rules: 10,
            max_body: 3,
            neg_head_prob: 0.3,
            neg_body_prob: 0.4,
            n_components: 3,
            edge_prob: 0.5,
        }
    }
}

/// A random ordered propositional program (for the theorem property
/// tests). Edges only go from lower-indexed to higher-indexed
/// components, so the declared order is always acyclic.
pub fn random_ordered(world: &mut World, cfg: &RandomCfg, seed: u64) -> OrderedProgram {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut prog = OrderedProgram::new();
    let comps: Vec<_> = (0..cfg.n_components.max(1))
        .map(|i| {
            let sym = world.syms.intern(&format!("c{i}"));
            prog.add_component(sym)
        })
        .collect();
    for i in 0..comps.len() {
        for j in (i + 1)..comps.len() {
            if rng.gen_bool(cfg.edge_prob) {
                prog.add_edge(comps[i], comps[j]);
            }
        }
    }
    for _ in 0..cfg.n_rules {
        let comp = comps[rng.gen_range(0..comps.len())];
        let head_sign = if rng.gen_bool(cfg.neg_head_prob) {
            Sign::Neg
        } else {
            Sign::Pos
        };
        let head_atom = rng.gen_range(0..cfg.n_atoms);
        let head = lit(world, head_sign, &format!("p{head_atom}"), vec![]);
        let body_len = rng.gen_range(0..=cfg.max_body);
        let mut body = Vec::with_capacity(body_len);
        for _ in 0..body_len {
            let sign = if rng.gen_bool(cfg.neg_body_prob) {
                Sign::Neg
            } else {
                Sign::Pos
            };
            let atom = rng.gen_range(0..cfg.n_atoms);
            body.push(BodyItem::Lit(lit(world, sign, &format!("p{atom}"), vec![])));
        }
        prog.add_rule(comp, Rule::new(head, body));
    }
    prog
}

/// A random flat **seminegative** program (positive heads only).
pub fn random_seminegative(world: &mut World, cfg: &RandomCfg, seed: u64) -> OrderedProgram {
    let flat = RandomCfg {
        neg_head_prob: 0.0,
        n_components: 1,
        ..cfg.clone()
    };
    random_ordered(world, &flat, seed)
}

/// A random flat **negative** program (mixed-sign heads, one
/// component).
pub fn random_negative(world: &mut World, cfg: &RandomCfg, seed: u64) -> OrderedProgram {
    let flat = RandomCfg {
        n_components: 1,
        ..cfg.clone()
    };
    random_ordered(world, &flat, seed)
}

/// One step of a [`mutation_stream`] workload, in surface syntax ready
/// for `Kb::assert_rule` / `Kb::retract_rule`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mutation {
    /// Assert this rule into the named object.
    Assert {
        /// Target object.
        object: String,
        /// Rule text, e.g. `"parent(m3_a, m3_b)."`.
        rule: String,
    },
    /// Retract this rule from the named object.
    Retract {
        /// Target object.
        object: String,
        /// Rule text of a previously asserted rule.
        rule: String,
    },
}

impl Mutation {
    /// The rule text of either variant.
    pub fn rule(&self) -> &str {
        match self {
            Mutation::Assert { rule, .. } | Mutation::Retract { rule, .. } => rule,
        }
    }

    /// The target object of either variant.
    pub fn object(&self) -> &str {
        match self {
            Mutation::Assert { object, .. } | Mutation::Retract { object, .. } => object,
        }
    }
}

/// Configuration for [`mutation_stream`].
#[derive(Debug, Clone)]
pub struct MutationCfg {
    /// Length of the base ancestor chain (`parent` facts `a0→a1→…`).
    pub n_base: usize,
    /// Number of mutations in the stream.
    pub n_mutations: usize,
    /// Probability that a step retracts a previously asserted rule
    /// instead of asserting a fresh one.
    pub retract_prob: f64,
    /// Probability that an asserted edge attaches to the base chain
    /// (`parent(aI, mK_b)`) rather than being an isolated fresh edge.
    pub attach_prob: f64,
}

impl Default for MutationCfg {
    fn default() -> Self {
        Self {
            n_base: 64,
            n_mutations: 32,
            retract_prob: 0.25,
            attach_prob: 0.25,
        }
    }
}

/// The incremental-maintenance workload: a base ancestor-chain program
/// (object `"main"`, surface syntax) plus a deterministic stream of
/// assert/retract mutations against it. Asserts add `parent` edges —
/// mostly between fresh constants, sometimes attached to the chain —
/// and retracts remove a uniformly chosen still-live earlier assert, so
/// the stream exercises both delta grounding paths without ever
/// retracting a base rule.
pub fn mutation_stream(cfg: &MutationCfg, seed: u64) -> (String, Vec<Mutation>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut base = String::new();
    for i in 0..cfg.n_base.saturating_sub(1) {
        base.push_str(&format!("parent(a{i}, a{}).\n", i + 1));
    }
    base.push_str("anc(X,Y) :- parent(X,Y).\nanc(X,Y) :- parent(X,Z), anc(Z,Y).\n");
    let mut out = Vec::with_capacity(cfg.n_mutations);
    // Rules asserted by the stream and not yet retracted.
    let mut live: Vec<String> = Vec::new();
    for k in 0..cfg.n_mutations {
        if !live.is_empty() && rng.gen_bool(cfg.retract_prob) {
            let rule = live.swap_remove(rng.gen_range(0..live.len()));
            out.push(Mutation::Retract {
                object: "main".to_string(),
                rule,
            });
            continue;
        }
        let rule = if cfg.n_base > 0 && rng.gen_bool(cfg.attach_prob) {
            let i = rng.gen_range(0..cfg.n_base);
            format!("parent(a{i}, m{k}_b).")
        } else {
            format!("parent(m{k}_a, m{k}_b).")
        };
        live.push(rule.clone());
        out.push(Mutation::Assert {
            object: "main".to_string(),
            rule,
        });
    }
    (base, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_shape() {
        let mut w = World::new();
        let p = taxonomy_chain(&mut w, 16, 3);
        assert_eq!(p.components.len(), 4);
        assert!(p.order().is_ok());
        // 16 bird facts + 1 fly rule + 3 class CWA rules.
        assert_eq!(p.components[3].rules.len(), 20);
        // Exception layers cover 8, 4, 2 species (+1 rule each).
        assert_eq!(p.components[2].rules.len(), 9);
        assert_eq!(p.components[1].rules.len(), 5);
        assert_eq!(p.components[0].rules.len(), 3);
    }

    #[test]
    fn taxonomy_expected_matches_definition() {
        // n=16, 3 layers: species 0..2 deepest depth 3 (odd → no fly),
        // 2..4 depth 2 (fly), 4..8 depth 1 (no fly), 8..16 base (fly).
        assert!(!taxonomy_expected_fly(16, 3, 0));
        assert!(!taxonomy_expected_fly(16, 3, 1));
        assert!(taxonomy_expected_fly(16, 3, 2));
        assert!(taxonomy_expected_fly(16, 3, 3));
        assert!(!taxonomy_expected_fly(16, 3, 4));
        assert!(!taxonomy_expected_fly(16, 3, 7));
        assert!(taxonomy_expected_fly(16, 3, 8));
        assert!(taxonomy_expected_fly(16, 3, 15));
    }

    #[test]
    fn defeating_pairs_shape() {
        let mut w = World::new();
        let p = defeating_pairs(&mut w, 5);
        assert_eq!(p.components.len(), 11);
        let o = p.order().unwrap();
        assert!(o.incomparable(olp_core::CompId(1), olp_core::CompId(2)));
    }

    #[test]
    fn defeating_cliques_shape() {
        let mut w = World::new();
        let p = defeating_cliques(&mut w, 4);
        // consumer + (pro, con) per clique.
        assert_eq!(p.components.len(), 9);
        // 2 facts + 2 consumer rules per clique.
        assert_eq!(p.rule_count(), 16);
        let o = p.order().unwrap();
        assert!(o.incomparable(olp_core::CompId(1), olp_core::CompId(2)));
    }

    #[test]
    fn expert_panel_shape() {
        let mut w = World::new();
        let p = expert_panel(&mut w, 4, 12, 16);
        // myself + 4 experts + 2 refiners (for odd experts 1 and 3).
        assert_eq!(p.components.len(), 7);
        assert!(p.order().is_ok());
    }

    #[test]
    fn ancestor_shapes() {
        let mut w = World::new();
        let chain = ancestor(&mut w, GraphShape::Chain, 5);
        assert_eq!(chain.rule_count(), 6); // 4 edges + 2 rules
        let mut w2 = World::new();
        let tree = ancestor(&mut w2, GraphShape::BinaryTree, 7);
        assert_eq!(tree.rule_count(), 8);
        let mut w3 = World::new();
        let rnd = ancestor(&mut w3, GraphShape::Random { edges: 10, seed: 1 }, 5);
        assert_eq!(rnd.rule_count(), 12);
    }

    #[test]
    fn random_datalog_is_safe_and_deterministic() {
        let cfg = DatalogCfg::default();
        let mut w1 = World::new();
        let p1 = random_datalog(&mut w1, &cfg, 99);
        let mut w2 = World::new();
        let p2 = random_datalog(&mut w2, &cfg, 99);
        assert_eq!(p1.components, p2.components);
        assert!(p1.order().is_ok());
        // Every rule is safe (the generator completes coverage).
        assert!(p1.unsafe_rules().is_empty());
        // Facts are ground.
        for (_, r) in p1.rules() {
            if r.is_fact() {
                assert!(r.is_ground());
            }
        }
    }

    #[test]
    fn mutation_stream_is_deterministic_and_retracts_live_asserts() {
        let cfg = MutationCfg::default();
        let (base1, muts1) = mutation_stream(&cfg, 11);
        let (base2, muts2) = mutation_stream(&cfg, 11);
        assert_eq!(base1, base2);
        assert_eq!(muts1, muts2);
        assert_eq!(muts1.len(), cfg.n_mutations);
        assert!(base1.contains("parent(a0, a1)."));
        assert!(base1.contains("anc(X,Y) :- parent(X,Z), anc(Z,Y)."));
        // Every retract targets a still-live earlier assert.
        let mut live: Vec<&str> = Vec::new();
        let mut saw_retract = false;
        for m in &muts1 {
            match m {
                Mutation::Assert { object, rule } => {
                    assert_eq!(object, "main");
                    live.push(rule);
                }
                Mutation::Retract { object, rule } => {
                    assert_eq!(object, "main");
                    saw_retract = true;
                    let i = live.iter().position(|r| *r == rule).expect("live");
                    live.swap_remove(i);
                }
            }
        }
        assert!(saw_retract, "default config should produce retracts");
        // A different seed produces a different stream.
        let (_, muts3) = mutation_stream(&cfg, 12);
        assert_ne!(muts1, muts3);
    }

    #[test]
    fn random_generators_are_deterministic_and_valid() {
        let cfg = RandomCfg::default();
        let mut w1 = World::new();
        let p1 = random_ordered(&mut w1, &cfg, 42);
        let mut w2 = World::new();
        let p2 = random_ordered(&mut w2, &cfg, 42);
        assert_eq!(p1.components, p2.components);
        assert_eq!(p1.edges, p2.edges);
        assert!(p1.order().is_ok());

        let mut w3 = World::new();
        let sn = random_seminegative(&mut w3, &cfg, 7);
        assert!(sn.rules().all(|(_, r)| r.head.sign == Sign::Pos));
        assert_eq!(sn.components.len(), 1);
    }
}
