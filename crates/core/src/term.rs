//! Non-ground terms, as they appear in rules before grounding.
//!
//! A term is a variable, a constant, an integer, or a compound
//! `f(t1, …, tn)` (recursively). Variables are identified by their
//! interned name ([`Sym`]); the parser guarantees distinct variables have
//! distinct symbols within a rule.

use crate::fxhash::FxHashMap;
use crate::gterm::{GTermId, TermStore};
use crate::symbol::Sym;

/// A (possibly non-ground) term.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A variable, e.g. `X`.
    Var(Sym),
    /// A constant symbol, e.g. `penguin`.
    Const(Sym),
    /// An integer constant, e.g. `16`.
    Int(i64),
    /// A compound term `f(t1, …, tn)`, `n ≥ 1`.
    App(Sym, Vec<Term>),
}

/// A substitution from variables to interned ground terms, used while
/// instantiating a rule.
pub type Bindings = FxHashMap<Sym, GTermId>;

impl Term {
    /// Whether the term contains no variables.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) => false,
            Term::Const(_) | Term::Int(_) => true,
            Term::App(_, args) => args.iter().all(Term::is_ground),
        }
    }

    /// Appends each variable (first occurrence only) to `out`.
    pub fn collect_vars(&self, out: &mut Vec<Sym>) {
        match self {
            Term::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            Term::Const(_) | Term::Int(_) => {}
            Term::App(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
        }
    }

    /// Instantiates the term under `bindings`, interning the resulting
    /// ground term into `store`. Returns `None` if some variable is
    /// unbound.
    pub fn intern(&self, store: &mut TermStore, bindings: &Bindings) -> Option<GTermId> {
        match self {
            Term::Var(v) => bindings.get(v).copied(),
            Term::Const(c) => Some(store.constant(*c)),
            Term::Int(i) => Some(store.int(*i)),
            Term::App(f, args) => {
                let mut ids = Vec::with_capacity(args.len());
                for a in args {
                    ids.push(a.intern(store, bindings)?);
                }
                Some(store.func(*f, &ids))
            }
        }
    }

    /// Matches this *pattern* against the ground term `g`, extending
    /// `bindings`. Returns `false` (leaving `bindings` possibly extended
    /// with partial matches — callers must treat it as poisoned on
    /// failure) when the shapes disagree or a variable is already bound
    /// to a different term.
    pub fn match_ground(&self, g: GTermId, store: &TermStore, bindings: &mut Bindings) -> bool {
        use crate::gterm::GTerm;
        match self {
            Term::Var(v) => {
                if let Some(&bound) = bindings.get(v) {
                    bound == g
                } else {
                    bindings.insert(*v, g);
                    true
                }
            }
            Term::Const(c) => matches!(store.get(g), GTerm::Const(c2) if c2 == c),
            Term::Int(i) => matches!(store.get(g), GTerm::Int(i2) if i2 == i),
            Term::App(f, args) => match store.get(g) {
                GTerm::Func(f2, gargs) if f2 == f && gargs.len() == args.len() => {
                    // Clone the child list: `store` is borrowed immutably
                    // and recursion re-borrows it.
                    let gargs = gargs.clone();
                    args.iter()
                        .zip(gargs.iter())
                        .all(|(p, &ga)| p.match_ground(ga, store, bindings))
                }
                _ => false,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolTable;

    fn syms() -> SymbolTable {
        SymbolTable::new()
    }

    #[test]
    fn groundness() {
        let mut s = syms();
        let x = Term::Var(s.intern("X"));
        let c = Term::Const(s.intern("c"));
        let f = s.intern("f");
        assert!(!x.is_ground());
        assert!(c.is_ground());
        assert!(Term::Int(3).is_ground());
        assert!(!Term::App(f, vec![c.clone(), x.clone()]).is_ground());
        assert!(Term::App(f, vec![c.clone(), Term::Int(1)]).is_ground());
    }

    #[test]
    fn collect_vars_dedups_in_order() {
        let mut s = syms();
        let x = s.intern("X");
        let y = s.intern("Y");
        let f = s.intern("f");
        let t = Term::App(
            f,
            vec![Term::Var(x), Term::Var(y), Term::Var(x), Term::Int(1)],
        );
        let mut vars = Vec::new();
        t.collect_vars(&mut vars);
        assert_eq!(vars, vec![x, y]);
    }

    #[test]
    fn intern_requires_all_bindings() {
        let mut s = syms();
        let x = s.intern("X");
        let f = s.intern("f");
        let mut store = TermStore::new();
        let t = Term::App(f, vec![Term::Var(x)]);
        let mut b = Bindings::default();
        assert_eq!(t.intern(&mut store, &b), None);
        let g = store.int(5);
        b.insert(x, g);
        let id = t.intern(&mut store, &b).unwrap();
        assert_eq!(store.depth(id), 1);
    }

    #[test]
    fn match_ground_binds_and_checks() {
        let mut s = syms();
        let x = s.intern("X");
        let f = s.intern("f");
        let c = s.intern("c");
        let mut store = TermStore::new();
        let gc = store.constant(c);
        let gf = store.func(f, &[gc]);

        // f(X) matches f(c) binding X := c.
        let pat = Term::App(f, vec![Term::Var(x)]);
        let mut b = Bindings::default();
        assert!(pat.match_ground(gf, &store, &mut b));
        assert_eq!(b[&x], gc);

        // A bound variable must agree.
        let gi = store.int(9);
        let pat2 = Term::Var(x);
        assert!(!pat2.match_ground(gi, &store, &mut b));
        assert!(pat2.match_ground(gc, &store, &mut b));

        // Shape mismatch fails.
        let pat3 = Term::App(f, vec![Term::Int(3)]);
        let mut b2 = Bindings::default();
        assert!(!pat3.match_ground(gf, &store, &mut b2));
        assert!(!Term::Const(c).match_ground(gf, &store, &mut b2));
    }
}
