//! A local implementation of the FxHash algorithm (the hash used by the
//! Rust compiler, originally from Firefox).
//!
//! The workspace keys most maps by small `u32` ids ([`crate::Sym`],
//! [`crate::AtomId`], …), for which SipHash (the standard-library
//! default) is needlessly slow. The Rust Performance Book recommends
//! FxHash for exactly this shape of key; the algorithm is ~15 lines, so
//! we implement it locally rather than pull in an extra dependency
//! (see DESIGN.md, dependency policy).
//!
//! This is **not** a DoS-resistant hash. Nothing in this workspace hashes
//! attacker-controlled data into long-lived tables, so that trade-off is
//! acceptable — the same judgement rustc itself makes.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the original Firefox implementation
/// (64-bit variant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash state: a single 64-bit accumulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed with FxHash. Drop-in replacement for
/// `std::collections::HashMap` across the workspace.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` hashed with FxHash.
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(bytes: &[u8]) -> u64 {
        let mut h = FxHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(b"penguin"), hash_of(b"penguin"));
        assert_eq!(hash_of(b""), 0);
    }

    #[test]
    fn distinguishes_nearby_inputs() {
        assert_ne!(hash_of(b"penguin"), hash_of(b"penguim"));
        assert_ne!(hash_of(b"ab"), hash_of(b"ba"));
        // Inputs that differ only in a trailing zero byte must differ:
        // the remainder is zero-padded, so this exercises the length
        // sensitivity of the chunking.
        assert_ne!(hash_of(&[1, 2, 3]), hash_of(&[1, 2, 3, 0, 0, 0, 0, 0, 1]));
    }

    #[test]
    fn integer_writes_match_between_widths_only_by_value() {
        let mut a = FxHasher::default();
        a.write_u32(7);
        let mut b = FxHasher::default();
        b.write_u64(7);
        // Same accumulated value: both add 7 as u64. This is fine — we
        // never mix key types within one map.
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m[&1], "one");
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1000 {
            s.insert(i * 2_654_435_761 % 97);
        }
        assert_eq!(s.len(), 97);
    }
}
