//! Components and ordered programs.
//!
//! Definition 1 of the paper: an *ordered program* is a finite partially
//! ordered set of negative programs, its *components*. The order `≤` is
//! an "isa"-style hierarchy: `C1 < C2` makes `C1` the more **specific**
//! component — `C1` inherits the rules of `C2`, and `C1`'s own rules may
//! *overrule* them. The view of the program from component `C` is
//! `C* = { r | r ∈ C_j, C ≤ C_j }` (the rules of `C` and of everything
//! above it).
//!
//! Users declare the covering edges (`lower < upper`); [`Order`] is the
//! reflexive–transitive closure, validated to be antisymmetric (acyclic
//! on distinct components).

use crate::bitset::BitSet;
use crate::rule::Rule;
use crate::span::{Pos, RuleSpan, SpanTable};
use crate::symbol::Sym;
use std::fmt;

/// Index of a component within an [`OrderedProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CompId(pub u32);

impl CompId {
    /// The raw index, for use as a dense-array key.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One component (module/object): a named set of rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Component {
    /// The component's name.
    pub name: Sym,
    /// Its local rules.
    pub rules: Vec<Rule>,
}

impl Component {
    /// Creates an empty component.
    pub fn new(name: Sym) -> Self {
        Component {
            name,
            rules: Vec::new(),
        }
    }
}

/// Error constructing the component partial order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrderError {
    /// The declared `<` edges contain a cycle through the given
    /// component, so `<` is not a strict partial order.
    Cycle(CompId),
    /// An edge refers to a component index out of range.
    UnknownComponent(CompId),
    /// A component is declared strictly below itself (`c < c`).
    SelfEdge(CompId),
}

impl fmt::Display for OrderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrderError::Cycle(c) => write!(f, "cycle in component order through component {}", c.0),
            OrderError::UnknownComponent(c) => {
                write!(f, "order edge mentions unknown component {}", c.0)
            }
            OrderError::SelfEdge(c) => write!(f, "component {} declared below itself", c.0),
        }
    }
}

impl std::error::Error for OrderError {}

/// The reflexive–transitive closure of the declared component order.
///
/// Row `c` of `leq` is the **up-set** of `c`: all `j` with `c ≤ j`. This
/// is exactly the set of components whose rules appear in `C*`.
#[derive(Debug, Clone)]
pub struct Order {
    n: usize,
    leq: Vec<BitSet>,
}

impl Order {
    /// Builds the closure from covering edges `(lower, upper)` over `n`
    /// components.
    pub fn from_edges(n: usize, edges: &[(CompId, CompId)]) -> Result<Order, OrderError> {
        fn dfs_cycle(v: usize, adj: &[Vec<usize>], colour: &mut [u8]) -> Option<usize> {
            colour[v] = 1;
            for &w in &adj[v] {
                match colour[w] {
                    1 => return Some(w),
                    0 => {
                        if let Some(c) = dfs_cycle(w, adj, colour) {
                            return Some(c);
                        }
                    }
                    _ => {}
                }
            }
            colour[v] = 2;
            None
        }
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(lo, hi) in edges {
            if lo.index() >= n {
                return Err(OrderError::UnknownComponent(lo));
            }
            if hi.index() >= n {
                return Err(OrderError::UnknownComponent(hi));
            }
            if lo == hi {
                return Err(OrderError::SelfEdge(lo));
            }
            adj[lo.index()].push(hi.index());
        }
        // DFS-based transitive closure with cycle detection. Component
        // counts are small (a handful to a few hundred), so O(n·e) with
        // bitset rows is more than adequate.
        let mut leq: Vec<BitSet> = (0..n).map(|_| BitSet::with_capacity(n)).collect();
        // Detect cycles with a colour DFS first.
        let mut colour = vec![0u8; n]; // 0 white, 1 grey, 2 black
        for v in 0..n {
            if colour[v] == 0 {
                if let Some(c) = dfs_cycle(v, &adj, &mut colour) {
                    return Err(OrderError::Cycle(CompId(c as u32)));
                }
            }
        }
        // Reachability per node (iterative worklist; order is acyclic).
        for (v, row) in leq.iter_mut().enumerate() {
            let mut stack = vec![v];
            while let Some(u) = stack.pop() {
                if row.insert(u) {
                    stack.extend(adj[u].iter().copied());
                }
            }
        }
        Ok(Order { n, leq })
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether there are no components.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// `a ≤ b` in the component order.
    #[inline]
    pub fn leq(&self, a: CompId, b: CompId) -> bool {
        self.leq[a.index()].contains(b.index())
    }

    /// `a < b` (strictly).
    #[inline]
    pub fn lt(&self, a: CompId, b: CompId) -> bool {
        a != b && self.leq(a, b)
    }

    /// `a <> b`: distinct and incomparable (Def. 2's defeating
    /// side-condition, together with equality).
    #[inline]
    pub fn incomparable(&self, a: CompId, b: CompId) -> bool {
        a != b && !self.leq(a, b) && !self.leq(b, a)
    }

    /// Whether a rule from component `attacker` can **overrule** a rule
    /// from component `victim` in any view: `attacker < victim`.
    #[inline]
    pub fn can_overrule(&self, attacker: CompId, victim: CompId) -> bool {
        self.lt(attacker, victim)
    }

    /// Whether a rule from `attacker` can **defeat** a rule from
    /// `victim`: the components are equal or incomparable (Def. 2).
    #[inline]
    pub fn can_defeat(&self, attacker: CompId, victim: CompId) -> bool {
        attacker == victim || self.incomparable(attacker, victim)
    }

    /// The up-set of `c`: components `j` with `c ≤ j`, i.e. those whose
    /// rules belong to the view `C*`.
    pub fn upset(&self, c: CompId) -> impl Iterator<Item = CompId> + '_ {
        self.leq[c.index()].iter().map(|i| CompId(i as u32))
    }

    /// Membership in the view: does component `j`'s rule set belong to
    /// `c*`?
    #[inline]
    pub fn in_view(&self, c: CompId, j: CompId) -> bool {
        self.leq(c, j)
    }
}

/// An ordered program: components plus declared `<` edges.
#[derive(Debug, Clone, Default)]
pub struct OrderedProgram {
    /// The components, indexed by [`CompId`].
    pub components: Vec<Component>,
    /// Declared covering edges `(lower, upper)`, i.e. `lower < upper`.
    pub edges: Vec<(CompId, CompId)>,
    /// Source spans recorded by the parser (empty for programs built
    /// programmatically). Kept beside the AST so rule equality and
    /// printing are position-independent.
    pub spans: SpanTable,
}

impl OrderedProgram {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an empty component, returning its id.
    pub fn add_component(&mut self, name: Sym) -> CompId {
        let id = CompId(u32::try_from(self.components.len()).expect("too many components"));
        self.components.push(Component::new(name));
        id
    }

    /// Adds a rule to component `c`.
    pub fn add_rule(&mut self, c: CompId, rule: Rule) {
        self.components[c.index()].rules.push(rule);
    }

    /// Adds a rule to component `c` with its source span.
    pub fn add_rule_spanned(&mut self, c: CompId, rule: Rule, span: RuleSpan) {
        self.spans
            .set_rule(c.index(), self.components[c.index()].rules.len(), span);
        self.add_rule(c, rule);
    }

    /// Removes (and returns) rule `i` of component `c`, keeping the
    /// span table aligned. Mutating `components[c].rules` directly
    /// leaves stale spans behind; use this instead.
    pub fn remove_rule(&mut self, c: CompId, i: usize) -> Rule {
        self.spans.remove_rule(c.index(), i);
        self.components[c.index()].rules.remove(i)
    }

    /// Inserts `rule` at index `i` of component `c`, keeping the span
    /// table aligned (the inserted rule itself gets no span; restore
    /// one via `spans.set_rule` if known). Inverse of
    /// [`OrderedProgram::remove_rule`].
    pub fn insert_rule(&mut self, c: CompId, i: usize, rule: Rule) {
        self.spans.insert_rule(c.index(), i);
        self.components[c.index()].rules.insert(i, rule);
    }

    /// Removes the last rule of component `c` (rollback helper).
    pub fn pop_rule(&mut self, c: CompId) -> Option<Rule> {
        let n = self.components[c.index()].rules.len();
        if n == 0 {
            return None;
        }
        Some(self.remove_rule(c, n - 1))
    }

    /// Declares `lower < upper`.
    pub fn add_edge(&mut self, lower: CompId, upper: CompId) {
        self.edges.push((lower, upper));
    }

    /// Declares `lower < upper` with the declaration's source position.
    pub fn add_edge_spanned(&mut self, lower: CompId, upper: CompId, pos: Pos) {
        self.spans.set_edge(self.edges.len(), pos);
        self.add_edge(lower, upper);
    }

    /// Finds a component by name.
    pub fn component_by_name(&self, name: Sym) -> Option<CompId> {
        self.components
            .iter()
            .position(|c| c.name == name)
            .map(|i| CompId(i as u32))
    }

    /// Computes (and validates) the partial order.
    pub fn order(&self) -> Result<Order, OrderError> {
        Order::from_edges(self.components.len(), &self.edges)
    }

    /// Total number of rules across all components.
    pub fn rule_count(&self) -> usize {
        self.components.iter().map(|c| c.rules.len()).sum()
    }

    /// Iterates over `(component, rule)` pairs.
    pub fn rules(&self) -> impl Iterator<Item = (CompId, &Rule)> {
        self.components
            .iter()
            .enumerate()
            .flat_map(|(ci, c)| c.rules.iter().map(move |r| (CompId(ci as u32), r)))
    }

    /// The unsafe rules of the program: `(component, rule index within
    /// the component)` for every rule with a variable not bound by any
    /// body literal. Unsafe rules are legal (the exhaustive grounder
    /// ranges them over the Herbrand universe, the smart grounder over
    /// the active domain) but usually indicate a typo — tooling surfaces
    /// them as warnings.
    pub fn unsafe_rules(&self) -> Vec<(CompId, usize)> {
        let mut out = Vec::new();
        for (ci, c) in self.components.iter().enumerate() {
            for (ri, r) in c.rules.iter().enumerate() {
                if !r.is_safe() {
                    out.push((CompId(ci as u32), ri));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolTable;

    fn prog(n: usize, edges: &[(u32, u32)]) -> OrderedProgram {
        let mut syms = SymbolTable::new();
        let mut p = OrderedProgram::new();
        for i in 0..n {
            p.add_component(syms.intern(&format!("c{i}")));
        }
        for &(a, b) in edges {
            p.add_edge(CompId(a), CompId(b));
        }
        p
    }

    #[test]
    fn two_component_chain() {
        // Fig. 1: C1 < C2.
        let p = prog(2, &[(0, 1)]);
        let o = p.order().unwrap();
        assert!(o.lt(CompId(0), CompId(1)));
        assert!(!o.lt(CompId(1), CompId(0)));
        assert!(o.leq(CompId(0), CompId(0)));
        assert!(!o.incomparable(CompId(0), CompId(1)));
        assert!(o.can_overrule(CompId(0), CompId(1)));
        assert!(!o.can_overrule(CompId(1), CompId(0)));
        assert!(!o.can_defeat(CompId(0), CompId(1)));
        assert!(o.can_defeat(CompId(0), CompId(0)));
        // View of C1 is {C1, C2}; view of C2 is {C2}.
        let up0: Vec<_> = o.upset(CompId(0)).collect();
        assert_eq!(up0, vec![CompId(0), CompId(1)]);
        let up1: Vec<_> = o.upset(CompId(1)).collect();
        assert_eq!(up1, vec![CompId(1)]);
    }

    #[test]
    fn diamond_transitivity_and_incomparability() {
        // Fig. 2 / loan shape: c0 < c1, c0 < c2, c2 < c3.
        let p = prog(4, &[(0, 1), (0, 2), (2, 3)]);
        let o = p.order().unwrap();
        assert!(o.lt(CompId(0), CompId(3)), "transitive");
        assert!(o.incomparable(CompId(1), CompId(2)));
        assert!(o.incomparable(CompId(1), CompId(3)));
        assert!(o.can_defeat(CompId(1), CompId(2)));
        assert!(!o.can_defeat(CompId(2), CompId(3)));
        assert!(o.can_overrule(CompId(2), CompId(3)));
        let up0: Vec<_> = o.upset(CompId(0)).collect();
        assert_eq!(up0.len(), 4);
    }

    #[test]
    fn cycle_detected() {
        let p = prog(3, &[(0, 1), (1, 2), (2, 0)]);
        assert!(matches!(p.order(), Err(OrderError::Cycle(_))));
    }

    #[test]
    fn self_edge_rejected() {
        let p = prog(1, &[(0, 0)]);
        assert_eq!(p.order().unwrap_err(), OrderError::SelfEdge(CompId(0)));
    }

    #[test]
    fn unknown_component_rejected() {
        let p = prog(1, &[(0, 5)]);
        assert_eq!(
            p.order().unwrap_err(),
            OrderError::UnknownComponent(CompId(5))
        );
    }

    #[test]
    fn singleton_program() {
        let p = prog(1, &[]);
        let o = p.order().unwrap();
        assert!(o.leq(CompId(0), CompId(0)));
        assert!(!o.lt(CompId(0), CompId(0)));
        assert!(o.can_defeat(CompId(0), CompId(0)));
        assert!(!o.can_overrule(CompId(0), CompId(0)));
    }

    #[test]
    fn unsafe_rules_reported() {
        use crate::literal::Literal;
        use crate::rule::{BodyItem, Rule};
        use crate::term::Term;
        let mut syms = SymbolTable::new();
        let mut preds = crate::pred::PredTable::new();
        let x = syms.intern("X");
        let y = syms.intern("Y");
        let p = preds.intern(syms.intern("p"), 1);
        let q = preds.intern(syms.intern("q"), 1);
        let mut prog = OrderedProgram::new();
        let c = prog.add_component(syms.intern("m"));
        // safe: p(X) :- q(X)
        prog.add_rule(
            c,
            Rule::new(
                Literal::pos(p, vec![Term::Var(x)]),
                vec![BodyItem::Lit(Literal::pos(q, vec![Term::Var(x)]))],
            ),
        );
        // unsafe: p(X) :- q(Y)
        prog.add_rule(
            c,
            Rule::new(
                Literal::pos(p, vec![Term::Var(x)]),
                vec![BodyItem::Lit(Literal::pos(q, vec![Term::Var(y)]))],
            ),
        );
        assert_eq!(prog.unsafe_rules(), vec![(c, 1)]);
    }

    #[test]
    fn component_lookup_and_counts() {
        let mut syms = SymbolTable::new();
        let mut p = OrderedProgram::new();
        let n1 = syms.intern("myself");
        let n2 = syms.intern("expert2");
        let c1 = p.add_component(n1);
        let c2 = p.add_component(n2);
        assert_eq!(p.component_by_name(n1), Some(c1));
        assert_eq!(p.component_by_name(n2), Some(c2));
        assert_eq!(p.component_by_name(syms.intern("nobody")), None);
        assert_eq!(p.rule_count(), 0);
    }
}
