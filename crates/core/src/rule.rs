//! Rules.
//!
//! A rule is `Q0 ← Q1, …, Qm` where `Q0` (the head) is a literal that may
//! be **negative** — the paper calls such rules *negative rules* — and the
//! body is a list of literals and arithmetic comparisons. The paper's
//! loan program (Fig. 3) uses comparisons such as `X > Y + 2`, so bodies
//! admit [`Cmp`] items over integer arithmetic.
//!
//! Terminology from §2, kept as predicates on [`Rule`]:
//! * *seminegative rule* — positive head (body literals of any sign);
//! * *positive rule* (Horn clause) — positive head and all-positive body;
//! * *fact* — empty body;
//! * *ground* — variable-free.

use crate::literal::{Literal, Sign};
use crate::symbol::Sym;
use crate::term::{Bindings, Term};
use std::fmt;

/// Arithmetic comparison operators usable in rule bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=` / `==`
    Eq,
    /// `!=` / `<>`
    Ne,
}

impl CmpOp {
    /// Applies the comparison to two integers.
    #[inline]
    pub fn eval(self, l: i64, r: i64) -> bool {
        match self {
            CmpOp::Lt => l < r,
            CmpOp::Le => l <= r,
            CmpOp::Gt => l > r,
            CmpOp::Ge => l >= r,
            CmpOp::Eq => l == r,
            CmpOp::Ne => l != r,
        }
    }

    /// Surface-syntax spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
        }
    }
}

/// Errors raised while evaluating arithmetic in a rule body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A variable in a comparison was not bound by the literal part of
    /// the body (the rule is unsafe).
    UnboundVar(Sym),
    /// A non-integer term (constant or compound) appeared in arithmetic.
    NotAnInteger,
    /// Division or modulo by zero.
    DivByZero,
    /// Integer overflow during evaluation.
    Overflow,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVar(s) => write!(f, "unbound variable {s} in comparison"),
            EvalError::NotAnInteger => write!(f, "non-integer term in arithmetic"),
            EvalError::DivByZero => write!(f, "division by zero"),
            EvalError::Overflow => write!(f, "integer overflow"),
        }
    }
}

impl std::error::Error for EvalError {}

/// An integer arithmetic expression over terms, e.g. `Y + 2`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Aexp {
    /// A term; must evaluate to an integer (an `Int` literal or a
    /// variable bound to one).
    Term(Term),
    /// `l + r`
    Add(Box<Aexp>, Box<Aexp>),
    /// `l - r`
    Sub(Box<Aexp>, Box<Aexp>),
    /// `l * r`
    Mul(Box<Aexp>, Box<Aexp>),
    /// `l / r` (truncating; division by zero is an evaluation error)
    Div(Box<Aexp>, Box<Aexp>),
    /// `l mod r`
    Mod(Box<Aexp>, Box<Aexp>),
    /// `-e`
    Neg(Box<Aexp>),
}

impl Aexp {
    /// Evaluates under `bindings`, resolving bound variables through the
    /// term `store`.
    pub fn eval(
        &self,
        store: &crate::gterm::TermStore,
        bindings: &Bindings,
    ) -> Result<i64, EvalError> {
        match self {
            Aexp::Term(Term::Int(i)) => Ok(*i),
            Aexp::Term(Term::Var(v)) => {
                let id = bindings.get(v).ok_or(EvalError::UnboundVar(*v))?;
                store.as_int(*id).ok_or(EvalError::NotAnInteger)
            }
            Aexp::Term(_) => Err(EvalError::NotAnInteger),
            Aexp::Add(l, r) => l
                .eval(store, bindings)?
                .checked_add(r.eval(store, bindings)?)
                .ok_or(EvalError::Overflow),
            Aexp::Sub(l, r) => l
                .eval(store, bindings)?
                .checked_sub(r.eval(store, bindings)?)
                .ok_or(EvalError::Overflow),
            Aexp::Mul(l, r) => l
                .eval(store, bindings)?
                .checked_mul(r.eval(store, bindings)?)
                .ok_or(EvalError::Overflow),
            Aexp::Div(l, r) => {
                let rv = r.eval(store, bindings)?;
                if rv == 0 {
                    return Err(EvalError::DivByZero);
                }
                l.eval(store, bindings)?
                    .checked_div(rv)
                    .ok_or(EvalError::Overflow)
            }
            Aexp::Mod(l, r) => {
                let rv = r.eval(store, bindings)?;
                if rv == 0 {
                    return Err(EvalError::DivByZero);
                }
                l.eval(store, bindings)?
                    .checked_rem(rv)
                    .ok_or(EvalError::Overflow)
            }
            Aexp::Neg(e) => e
                .eval(store, bindings)?
                .checked_neg()
                .ok_or(EvalError::Overflow),
        }
    }

    /// Appends each variable (first occurrence) to `out`.
    pub fn collect_vars(&self, out: &mut Vec<Sym>) {
        match self {
            Aexp::Term(t) => t.collect_vars(out),
            Aexp::Add(l, r)
            | Aexp::Sub(l, r)
            | Aexp::Mul(l, r)
            | Aexp::Div(l, r)
            | Aexp::Mod(l, r) => {
                l.collect_vars(out);
                r.collect_vars(out);
            }
            Aexp::Neg(e) => e.collect_vars(out),
        }
    }
}

/// An arithmetic comparison in a rule body, e.g. `X > Y + 2`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cmp {
    /// The operator.
    pub op: CmpOp,
    /// Left-hand expression.
    pub lhs: Aexp,
    /// Right-hand expression.
    pub rhs: Aexp,
}

/// Structural equality of the ground instantiation of pattern `t`
/// against the stored ground term `g`. `None` if `t` has an unbound
/// variable.
fn ground_term_eq(
    store: &crate::gterm::TermStore,
    bindings: &Bindings,
    g: crate::gterm::GTermId,
    t: &Term,
) -> Option<bool> {
    use crate::gterm::GTerm;
    Some(match t {
        Term::Var(v) => *bindings.get(v)? == g,
        Term::Const(c) => matches!(store.get(g), GTerm::Const(c2) if c2 == c),
        Term::Int(i) => matches!(store.get(g), GTerm::Int(i2) if i2 == i),
        Term::App(f, args) => match store.get(g) {
            GTerm::Func(f2, gargs) if f2 == f && gargs.len() == args.len() => {
                let gargs = gargs.clone();
                for (ga, a) in gargs.iter().zip(args) {
                    if !ground_term_eq(store, bindings, *ga, a)? {
                        return Some(false);
                    }
                }
                true
            }
            _ => false,
        },
    })
}

/// Structural equality of the ground instantiations of two term
/// patterns. `None` if either has an unbound variable.
fn terms_eq(
    store: &crate::gterm::TermStore,
    bindings: &Bindings,
    a: &Term,
    b: &Term,
) -> Option<bool> {
    Some(match (a, b) {
        (Term::Var(v), _) => {
            let g = *bindings.get(v)?;
            ground_term_eq(store, bindings, g, b)?
        }
        (_, Term::Var(w)) => {
            let g = *bindings.get(w)?;
            ground_term_eq(store, bindings, g, a)?
        }
        (Term::Const(c), Term::Const(d)) => c == d,
        (Term::Int(i), Term::Int(j)) => i == j,
        (Term::App(f, fa), Term::App(g, ga)) => {
            if f != g || fa.len() != ga.len() {
                return Some(false);
            }
            for (x, y) in fa.iter().zip(ga) {
                if !terms_eq(store, bindings, x, y)? {
                    return Some(false);
                }
            }
            true
        }
        _ => false,
    })
}

impl Cmp {
    /// Evaluates under `bindings`.
    ///
    /// `<`, `<=`, `>`, `>=` (and any arithmetic operators) require
    /// integer operands. `=` and `!=` additionally work as *structural
    /// term (dis)equality* when either side is a non-integer term — the
    /// paper's colour-choice program (Ex. 9) compares constants with
    /// `X ≠ Y`.
    pub fn eval(
        &self,
        store: &crate::gterm::TermStore,
        bindings: &Bindings,
    ) -> Result<bool, EvalError> {
        match (
            self.lhs.eval(store, bindings),
            self.rhs.eval(store, bindings),
        ) {
            (Ok(l), Ok(r)) => Ok(self.op.eval(l, r)),
            (l, r) if matches!(self.op, CmpOp::Eq | CmpOp::Ne) => {
                // Fall back to structural equality for `=` / `!=` on
                // bare terms (unbound variables still error).
                if let (Aexp::Term(a), Aexp::Term(b)) = (&self.lhs, &self.rhs) {
                    let eq = terms_eq(store, bindings, a, b)
                        .ok_or_else(|| l.err().or(r.err()).unwrap_or(EvalError::NotAnInteger))?;
                    Ok(match self.op {
                        CmpOp::Eq => eq,
                        _ => !eq,
                    })
                } else {
                    Err(l.err().or(r.err()).expect("at least one side failed"))
                }
            }
            (Err(e), _) | (_, Err(e)) => Err(e),
        }
    }

    /// Appends each variable (first occurrence) to `out`.
    pub fn collect_vars(&self, out: &mut Vec<Sym>) {
        self.lhs.collect_vars(out);
        self.rhs.collect_vars(out);
    }
}

/// One item in a rule body.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BodyItem {
    /// A (possibly negative) literal.
    Lit(Literal),
    /// An arithmetic comparison.
    Cmp(Cmp),
}

impl BodyItem {
    /// The literal, if this item is one.
    pub fn as_lit(&self) -> Option<&Literal> {
        match self {
            BodyItem::Lit(l) => Some(l),
            BodyItem::Cmp(_) => None,
        }
    }
}

/// A rule `head ← body`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Rule {
    /// The head literal (possibly negative — a *negative rule*).
    pub head: Literal,
    /// The body items, in source order.
    pub body: Vec<BodyItem>,
}

impl Rule {
    /// Builds a rule.
    pub fn new(head: Literal, body: Vec<BodyItem>) -> Self {
        Rule { head, body }
    }

    /// Builds a fact (empty body).
    pub fn fact(head: Literal) -> Self {
        Rule {
            head,
            body: Vec::new(),
        }
    }

    /// A *fact* has an empty body.
    pub fn is_fact(&self) -> bool {
        self.body.is_empty()
    }

    /// A *seminegative* rule has a positive head.
    pub fn is_seminegative(&self) -> bool {
        self.head.sign == Sign::Pos
    }

    /// A *positive* rule (Horn clause) has a positive head and an
    /// all-positive literal body.
    pub fn is_positive(&self) -> bool {
        self.head.sign == Sign::Pos
            && self
                .body
                .iter()
                .all(|b| b.as_lit().is_none_or(|l| l.sign == Sign::Pos))
    }

    /// Whether the rule is variable-free.
    pub fn is_ground(&self) -> bool {
        self.vars().is_empty()
    }

    /// The body literals (skipping comparisons).
    pub fn body_lits(&self) -> impl Iterator<Item = &Literal> {
        self.body.iter().filter_map(BodyItem::as_lit)
    }

    /// The body comparisons.
    pub fn body_cmps(&self) -> impl Iterator<Item = &Cmp> {
        self.body.iter().filter_map(|b| match b {
            BodyItem::Cmp(c) => Some(c),
            BodyItem::Lit(_) => None,
        })
    }

    /// All variables of the rule, first-occurrence order (head first).
    pub fn vars(&self) -> Vec<Sym> {
        let mut out = Vec::new();
        self.head.collect_vars(&mut out);
        for item in &self.body {
            match item {
                BodyItem::Lit(l) => l.collect_vars(&mut out),
                BodyItem::Cmp(c) => c.collect_vars(&mut out),
            }
        }
        out
    }

    /// A rule is **safe** when every variable occurs in at least one body
    /// literal (of either sign). Safe rules have finitely many relevant
    /// instantiations over the materialised Herbrand universe; the smart
    /// grounder requires safety, the exhaustive grounder merely prefers
    /// it.
    pub fn is_safe(&self) -> bool {
        let mut body_vars = Vec::new();
        for l in self.body_lits() {
            l.collect_vars(&mut body_vars);
        }
        self.vars().iter().all(|v| body_vars.contains(v))
    }

    /// Equality up to a consistent renaming of variables
    /// (alpha-equivalence): `p(X) ← q(X)` equals `p(Y) ← q(Y)` but not
    /// `p(X) ← q(Y)`. Variables are compared by their position in each
    /// rule's first-occurrence order ([`Rule::vars`]); everything else
    /// is compared structurally in source order.
    pub fn alpha_eq(&self, other: &Rule) -> bool {
        if self.body.len() != other.body.len() {
            return false;
        }
        let va = self.vars();
        let vb = other.vars();
        if va.len() != vb.len() {
            return false;
        }
        alpha_lit(&self.head, &other.head, &va, &vb)
            && self
                .body
                .iter()
                .zip(&other.body)
                .all(|(x, y)| match (x, y) {
                    (BodyItem::Lit(l), BodyItem::Lit(m)) => alpha_lit(l, m, &va, &vb),
                    (BodyItem::Cmp(c), BodyItem::Cmp(d)) => alpha_cmp(c, d, &va, &vb),
                    _ => false,
                })
    }
}

/// Variables are alpha-equal when they sit at the same position of
/// their rules' first-occurrence variable lists.
fn alpha_var(a: Sym, b: Sym, va: &[Sym], vb: &[Sym]) -> bool {
    va.iter().position(|&v| v == a) == vb.iter().position(|&v| v == b)
}

fn alpha_term(a: &Term, b: &Term, va: &[Sym], vb: &[Sym]) -> bool {
    match (a, b) {
        (Term::Var(x), Term::Var(y)) => alpha_var(*x, *y, va, vb),
        (Term::Const(c), Term::Const(d)) => c == d,
        (Term::Int(i), Term::Int(j)) => i == j,
        (Term::App(f, fa), Term::App(g, ga)) => {
            f == g
                && fa.len() == ga.len()
                && fa.iter().zip(ga).all(|(x, y)| alpha_term(x, y, va, vb))
        }
        _ => false,
    }
}

fn alpha_aexp(a: &Aexp, b: &Aexp, va: &[Sym], vb: &[Sym]) -> bool {
    match (a, b) {
        (Aexp::Term(x), Aexp::Term(y)) => alpha_term(x, y, va, vb),
        (Aexp::Add(l1, r1), Aexp::Add(l2, r2))
        | (Aexp::Sub(l1, r1), Aexp::Sub(l2, r2))
        | (Aexp::Mul(l1, r1), Aexp::Mul(l2, r2))
        | (Aexp::Div(l1, r1), Aexp::Div(l2, r2))
        | (Aexp::Mod(l1, r1), Aexp::Mod(l2, r2)) => {
            alpha_aexp(l1, l2, va, vb) && alpha_aexp(r1, r2, va, vb)
        }
        (Aexp::Neg(x), Aexp::Neg(y)) => alpha_aexp(x, y, va, vb),
        _ => false,
    }
}

fn alpha_cmp(a: &Cmp, b: &Cmp, va: &[Sym], vb: &[Sym]) -> bool {
    a.op == b.op && alpha_aexp(&a.lhs, &b.lhs, va, vb) && alpha_aexp(&a.rhs, &b.rhs, va, vb)
}

fn alpha_lit(a: &Literal, b: &Literal, va: &[Sym], vb: &[Sym]) -> bool {
    a.sign == b.sign
        && a.pred == b.pred
        && a.args.len() == b.args.len()
        && a.args
            .iter()
            .zip(&b.args)
            .all(|(x, y)| alpha_term(x, y, va, vb))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gterm::TermStore;
    use crate::pred::PredTable;
    use crate::symbol::SymbolTable;

    struct Fix {
        syms: SymbolTable,
        preds: PredTable,
        store: TermStore,
    }

    fn fix() -> Fix {
        Fix {
            syms: SymbolTable::new(),
            preds: PredTable::new(),
            store: TermStore::new(),
        }
    }

    #[test]
    fn cmpop_eval_table() {
        assert!(CmpOp::Lt.eval(1, 2));
        assert!(!CmpOp::Lt.eval(2, 2));
        assert!(CmpOp::Le.eval(2, 2));
        assert!(CmpOp::Gt.eval(3, 2));
        assert!(CmpOp::Ge.eval(2, 2));
        assert!(CmpOp::Eq.eval(2, 2));
        assert!(CmpOp::Ne.eval(1, 2));
        assert!(!CmpOp::Ne.eval(2, 2));
    }

    #[test]
    fn aexp_eval_arithmetic() {
        let f = fix();
        let b = Bindings::default();
        // (3 + 4) * 2 - 1 = 13
        let e = Aexp::Sub(
            Box::new(Aexp::Mul(
                Box::new(Aexp::Add(
                    Box::new(Aexp::Term(Term::Int(3))),
                    Box::new(Aexp::Term(Term::Int(4))),
                )),
                Box::new(Aexp::Term(Term::Int(2))),
            )),
            Box::new(Aexp::Term(Term::Int(1))),
        );
        assert_eq!(e.eval(&f.store, &b), Ok(13));
        let div = Aexp::Div(
            Box::new(Aexp::Term(Term::Int(7))),
            Box::new(Aexp::Term(Term::Int(2))),
        );
        assert_eq!(div.eval(&f.store, &b), Ok(3));
        let m = Aexp::Mod(
            Box::new(Aexp::Term(Term::Int(7))),
            Box::new(Aexp::Term(Term::Int(2))),
        );
        assert_eq!(m.eval(&f.store, &b), Ok(1));
        let neg = Aexp::Neg(Box::new(Aexp::Term(Term::Int(5))));
        assert_eq!(neg.eval(&f.store, &b), Ok(-5));
    }

    #[test]
    fn aexp_eval_errors() {
        let mut f = fix();
        let x = f.syms.intern("X");
        let c = f.syms.intern("c");
        let b = Bindings::default();
        assert_eq!(
            Aexp::Term(Term::Var(x)).eval(&f.store, &b),
            Err(EvalError::UnboundVar(x))
        );
        let gc = f.store.constant(c);
        let mut b2 = Bindings::default();
        b2.insert(x, gc);
        assert_eq!(
            Aexp::Term(Term::Var(x)).eval(&f.store, &b2),
            Err(EvalError::NotAnInteger)
        );
        let div0 = Aexp::Div(
            Box::new(Aexp::Term(Term::Int(1))),
            Box::new(Aexp::Term(Term::Int(0))),
        );
        assert_eq!(div0.eval(&f.store, &b), Err(EvalError::DivByZero));
        let ovf = Aexp::Add(
            Box::new(Aexp::Term(Term::Int(i64::MAX))),
            Box::new(Aexp::Term(Term::Int(1))),
        );
        assert_eq!(ovf.eval(&f.store, &b), Err(EvalError::Overflow));
    }

    #[test]
    fn cmp_eval_with_bindings() {
        let mut f = fix();
        let x = f.syms.intern("X");
        let y = f.syms.intern("Y");
        let gi12 = f.store.int(12);
        let gi16 = f.store.int(16);
        let mut b = Bindings::default();
        b.insert(x, gi12);
        b.insert(y, gi16);
        // Loan program, Expert3: X > Y + 2 with X=12, Y=16 → false.
        let c = Cmp {
            op: CmpOp::Gt,
            lhs: Aexp::Term(Term::Var(x)),
            rhs: Aexp::Add(
                Box::new(Aexp::Term(Term::Var(y))),
                Box::new(Aexp::Term(Term::Int(2))),
            ),
        };
        assert_eq!(c.eval(&f.store, &b), Ok(false));
        // With X=19, Y=16 → true.
        let gi19 = f.store.int(19);
        b.insert(x, gi19);
        assert_eq!(c.eval(&f.store, &b), Ok(true));
    }

    #[test]
    fn eq_ne_work_on_non_integer_terms() {
        let mut f = fix();
        let x = f.syms.intern("X");
        let y = f.syms.intern("Y");
        let red = f.store.constant(f.syms.intern("red"));
        let blue = f.store.constant(f.syms.intern("blue"));
        let mut b = Bindings::default();
        b.insert(x, red);
        b.insert(y, blue);
        let ne = Cmp {
            op: CmpOp::Ne,
            lhs: Aexp::Term(Term::Var(x)),
            rhs: Aexp::Term(Term::Var(y)),
        };
        assert_eq!(ne.eval(&f.store, &b), Ok(true));
        b.insert(y, red);
        assert_eq!(ne.eval(&f.store, &b), Ok(false));
        // Constant against bound variable.
        let eq = Cmp {
            op: CmpOp::Eq,
            lhs: Aexp::Term(Term::Var(x)),
            rhs: Aexp::Term(Term::Const(f.syms.intern("red"))),
        };
        assert_eq!(eq.eval(&f.store, &b), Ok(true));
        // Unbound variable still errors.
        let z = f.syms.intern("Z");
        let bad = Cmp {
            op: CmpOp::Eq,
            lhs: Aexp::Term(Term::Var(z)),
            rhs: Aexp::Term(Term::Var(x)),
        };
        assert_eq!(bad.eval(&f.store, &b), Err(EvalError::UnboundVar(z)));
        // Ordering comparisons on constants stay errors.
        let lt = Cmp {
            op: CmpOp::Lt,
            lhs: Aexp::Term(Term::Var(x)),
            rhs: Aexp::Term(Term::Var(y)),
        };
        assert_eq!(lt.eval(&f.store, &b), Err(EvalError::NotAnInteger));
    }

    #[test]
    fn eq_on_compound_terms_is_structural() {
        let mut f = fix();
        let s = f.syms.intern("s");
        let x = f.syms.intern("X");
        let zero = f.store.constant(f.syms.intern("zero"));
        let s_zero = f.store.func(s, &[zero]);
        let mut b = Bindings::default();
        b.insert(x, s_zero);
        let eq = Cmp {
            op: CmpOp::Eq,
            lhs: Aexp::Term(Term::Var(x)),
            rhs: Aexp::Term(Term::App(s, vec![Term::Const(f.syms.intern("zero"))])),
        };
        assert_eq!(eq.eval(&f.store, &b), Ok(true));
        let ne_shape = Cmp {
            op: CmpOp::Eq,
            lhs: Aexp::Term(Term::Var(x)),
            rhs: Aexp::Term(Term::Const(f.syms.intern("zero"))),
        };
        assert_eq!(ne_shape.eval(&f.store, &b), Ok(false));
    }

    #[test]
    fn rule_classification() {
        let mut f = fix();
        let p = f.preds.intern(f.syms.intern("p"), 0);
        let q = f.preds.intern(f.syms.intern("q"), 0);
        let pos = Rule::new(
            Literal::pos(p, vec![]),
            vec![BodyItem::Lit(Literal::pos(q, vec![]))],
        );
        assert!(pos.is_positive() && pos.is_seminegative() && !pos.is_fact());
        let semineg = Rule::new(
            Literal::pos(p, vec![]),
            vec![BodyItem::Lit(Literal::neg(q, vec![]))],
        );
        assert!(!semineg.is_positive() && semineg.is_seminegative());
        let negative = Rule::new(
            Literal::neg(p, vec![]),
            vec![BodyItem::Lit(Literal::pos(q, vec![]))],
        );
        assert!(!negative.is_positive() && !negative.is_seminegative());
        let fact = Rule::fact(Literal::pos(p, vec![]));
        assert!(fact.is_fact() && fact.is_ground());
    }

    #[test]
    fn safety() {
        let mut f = fix();
        let x = f.syms.intern("X");
        let y = f.syms.intern("Y");
        let p = f.preds.intern(f.syms.intern("p"), 1);
        let q = f.preds.intern(f.syms.intern("q"), 1);
        // p(X) ← q(X): safe.
        let safe = Rule::new(
            Literal::pos(p, vec![Term::Var(x)]),
            vec![BodyItem::Lit(Literal::pos(q, vec![Term::Var(x)]))],
        );
        assert!(safe.is_safe());
        // p(X) ← q(Y): unsafe (head var not in body).
        let unsafe_rule = Rule::new(
            Literal::pos(p, vec![Term::Var(x)]),
            vec![BodyItem::Lit(Literal::pos(q, vec![Term::Var(y)]))],
        );
        assert!(!unsafe_rule.is_safe());
        // p(X) ← ¬q(X): safe (negative body literal binds too, per the
        // paper's classical — not NAF — reading of body negation).
        let neg_safe = Rule::new(
            Literal::pos(p, vec![Term::Var(x)]),
            vec![BodyItem::Lit(Literal::neg(q, vec![Term::Var(x)]))],
        );
        assert!(neg_safe.is_safe());
        // p(X) ← q(X), X > Y: unsafe (Y only in comparison).
        let cmp_unsafe = Rule::new(
            Literal::pos(p, vec![Term::Var(x)]),
            vec![
                BodyItem::Lit(Literal::pos(q, vec![Term::Var(x)])),
                BodyItem::Cmp(Cmp {
                    op: CmpOp::Gt,
                    lhs: Aexp::Term(Term::Var(x)),
                    rhs: Aexp::Term(Term::Var(y)),
                }),
            ],
        );
        assert!(!cmp_unsafe.is_safe());
    }

    #[test]
    fn alpha_equivalence() {
        let mut f = fix();
        let x = f.syms.intern("X");
        let y = f.syms.intern("Y");
        let p = f.preds.intern(f.syms.intern("p"), 1);
        let q = f.preds.intern(f.syms.intern("q"), 1);
        let rule = |h: Sym, b: Sym| {
            Rule::new(
                Literal::pos(p, vec![Term::Var(h)]),
                vec![BodyItem::Lit(Literal::pos(q, vec![Term::Var(b)]))],
            )
        };
        // p(X) ← q(X)  ≡α  p(Y) ← q(Y), despite Rule::eq failing.
        assert_ne!(rule(x, x), rule(y, y));
        assert!(rule(x, x).alpha_eq(&rule(y, y)));
        // p(X) ← q(Y) is NOT alpha-equal to p(X) ← q(X).
        assert!(!rule(x, y).alpha_eq(&rule(x, x)));
        assert!(rule(x, y).alpha_eq(&rule(y, x)));

        // Repetition patterns matter: p(X,X) vs p(X,Y).
        let p2 = f.preds.intern(f.syms.intern("p"), 2);
        let rep = Rule::fact(Literal::pos(p2, vec![Term::Var(x), Term::Var(x)]));
        let dist = Rule::fact(Literal::pos(p2, vec![Term::Var(x), Term::Var(y)]));
        assert!(!rep.alpha_eq(&dist));
        assert!(rep.alpha_eq(&Rule::fact(Literal::pos(
            p2,
            vec![Term::Var(y), Term::Var(y)]
        ))));

        // Constants, signs, and comparisons compare structurally.
        let c = f.syms.intern("c");
        let fc = Rule::fact(Literal::pos(p, vec![Term::Const(c)]));
        assert!(fc.alpha_eq(&fc.clone()));
        assert!(!fc.alpha_eq(&Rule::fact(Literal::neg(p, vec![Term::Const(c)]))));
        let cmp_rule = |v: Sym, n: i64| {
            Rule::new(
                Literal::pos(p, vec![Term::Var(v)]),
                vec![
                    BodyItem::Lit(Literal::pos(q, vec![Term::Var(v)])),
                    BodyItem::Cmp(Cmp {
                        op: CmpOp::Gt,
                        lhs: Aexp::Term(Term::Var(v)),
                        rhs: Aexp::Term(Term::Int(n)),
                    }),
                ],
            )
        };
        assert!(cmp_rule(x, 3).alpha_eq(&cmp_rule(y, 3)));
        assert!(!cmp_rule(x, 3).alpha_eq(&cmp_rule(y, 4)));
    }

    #[test]
    fn vars_first_occurrence_order() {
        let mut f = fix();
        let x = f.syms.intern("X");
        let y = f.syms.intern("Y");
        let p = f.preds.intern(f.syms.intern("p"), 2);
        let q = f.preds.intern(f.syms.intern("q"), 2);
        let r = Rule::new(
            Literal::pos(p, vec![Term::Var(y), Term::Var(x)]),
            vec![BodyItem::Lit(Literal::pos(
                q,
                vec![Term::Var(x), Term::Var(y)],
            ))],
        );
        assert_eq!(r.vars(), vec![y, x]);
        assert_eq!(r.body_lits().count(), 1);
        assert_eq!(r.body_cmps().count(), 0);
    }
}
