//! Predicate table.
//!
//! A *predicate* in the paper is a symbol with an arity; `p/1` and `p/2`
//! are distinct predicates. [`PredTable`] interns `(Sym, arity)` pairs to
//! dense [`PredId`]s so per-predicate indexes (used heavily by the
//! grounder) can be plain vectors.

use crate::fxhash::FxHashMap;
use crate::symbol::Sym;

/// An interned predicate (name + arity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredId(pub u32);

impl PredId {
    /// The raw index, for use as a dense-array key.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Metadata for one predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredInfo {
    /// Predicate symbol (its name).
    pub name: Sym,
    /// Number of arguments.
    pub arity: u32,
}

/// Bidirectional `(name, arity)` ↔ [`PredId`] table.
#[derive(Debug, Default, Clone)]
pub struct PredTable {
    infos: Vec<PredInfo>,
    by_key: FxHashMap<(Sym, u32), PredId>,
}

impl PredTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns the predicate `name/arity`.
    pub fn intern(&mut self, name: Sym, arity: u32) -> PredId {
        if let Some(&p) = self.by_key.get(&(name, arity)) {
            return p;
        }
        let id = PredId(u32::try_from(self.infos.len()).expect("predicate table overflow"));
        self.infos.push(PredInfo { name, arity });
        self.by_key.insert((name, arity), id);
        id
    }

    /// Looks up a predicate without interning.
    pub fn get(&self, name: Sym, arity: u32) -> Option<PredId> {
        self.by_key.get(&(name, arity)).copied()
    }

    /// Metadata for `pred`.
    pub fn info(&self, pred: PredId) -> PredInfo {
        self.infos[pred.index()]
    }

    /// The arity of `pred`.
    pub fn arity(&self, pred: PredId) -> u32 {
        self.infos[pred.index()].arity
    }

    /// Number of predicates interned so far.
    pub fn len(&self) -> usize {
        self.infos.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.infos.is_empty()
    }

    /// Iterates over all predicate ids in id order.
    pub fn iter(&self) -> impl Iterator<Item = (PredId, PredInfo)> + '_ {
        self.infos
            .iter()
            .enumerate()
            .map(|(i, &info)| (PredId(i as u32), info))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolTable;

    #[test]
    fn same_name_different_arity_is_different_pred() {
        let mut syms = SymbolTable::new();
        let p = syms.intern("p");
        let mut preds = PredTable::new();
        let p1 = preds.intern(p, 1);
        let p2 = preds.intern(p, 2);
        assert_ne!(p1, p2);
        assert_eq!(preds.arity(p1), 1);
        assert_eq!(preds.arity(p2), 2);
    }

    #[test]
    fn intern_idempotent_and_get() {
        let mut syms = SymbolTable::new();
        let f = syms.intern("fly");
        let mut preds = PredTable::new();
        assert_eq!(preds.get(f, 1), None);
        let a = preds.intern(f, 1);
        let b = preds.intern(f, 1);
        assert_eq!(a, b);
        assert_eq!(preds.get(f, 1), Some(a));
        assert_eq!(preds.len(), 1);
    }

    #[test]
    fn info_round_trips() {
        let mut syms = SymbolTable::new();
        let name = syms.intern("anc");
        let mut preds = PredTable::new();
        let id = preds.intern(name, 2);
        let info = preds.info(id);
        assert_eq!(info.name, name);
        assert_eq!(info.arity, 2);
        let all: Vec<_> = preds.iter().collect();
        assert_eq!(all, vec![(id, info)]);
    }
}
