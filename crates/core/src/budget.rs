//! Engine-wide resource governor: step budgets, wall-clock deadlines,
//! and cooperative cancellation, with structured *anytime* outcomes.
//!
//! Stable-model enumeration for ordered programs is Σ₂-hard, the
//! grounder can blow up combinatorially, and even the polynomial
//! fixpoint can be too slow for a serving deadline. Every evaluation
//! entry point in the workspace therefore accepts a shared [`Budget`]
//! handle and returns an [`Eval`]: either `Complete(value)` — the
//! exact answer — or `Interrupted { reason, partial }` — a clearly
//! marked best-effort answer computed before the budget ran out.
//!
//! ## Design constraints
//!
//! * **Cheap on the hot path.** The unlimited budget is a `None` and
//!   costs one branch per [`Budget::tick`]. A limited budget does one
//!   relaxed `fetch_add` per tick; the (comparatively expensive)
//!   deadline and cancellation probes run only every
//!   [`PROBE_INTERVAL`] ticks.
//! * **Shareable across threads.** The same handle is cloned into the
//!   crossbeam workers of the parallel stable-model enumerator: the
//!   step counter is global across workers and [`Budget::cancel`] stops
//!   all of them cooperatively.
//! * **Anytime soundness.** Callers returning `Interrupted` must
//!   return a *sound under-approximation*: a prefix of the monotone
//!   fixpoint, or the models found so far. Consumers can always
//!   distinguish proven results (`Complete`) from best effort.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many ticks pass between deadline/cancellation probes.
///
/// A tick is an elementary inference step (nanoseconds to a few
/// microseconds of work), so probing every 1024 ticks keeps deadline
/// precision well under a millisecond while keeping `Instant::now`
/// off the hot path.
pub const PROBE_INTERVAL: u64 = 1024;

/// Why an evaluation stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InterruptReason {
    /// The step budget (`max_steps`) was exhausted.
    Steps,
    /// The wall-clock deadline passed.
    Deadline,
    /// [`Budget::cancel`] was called.
    Cancelled,
    /// An enumeration hit its requested model cap.
    ModelCap,
}

impl std::fmt::Display for InterruptReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterruptReason::Steps => write!(f, "step budget exhausted"),
            InterruptReason::Deadline => write!(f, "deadline exceeded"),
            InterruptReason::Cancelled => write!(f, "cancelled"),
            InterruptReason::ModelCap => write!(f, "model cap reached"),
        }
    }
}

/// An interrupted evaluation: why it stopped plus the sound partial
/// result computed before stopping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interrupted<T> {
    /// What stopped the evaluation.
    pub reason: InterruptReason,
    /// Best-effort result: a sound under-approximation of the exact
    /// answer (see the module docs for what each caller guarantees).
    pub partial: T,
}

/// Outcome of a budgeted evaluation: exact, or best-effort with the
/// interruption reason attached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Eval<T> {
    /// The evaluation ran to completion; this is the exact answer.
    Complete(T),
    /// The budget ran out; the payload is explicitly partial.
    Interrupted(Interrupted<T>),
}

impl<T> Eval<T> {
    /// The payload, exact or partial.
    pub fn value(&self) -> &T {
        match self {
            Eval::Complete(v) => v,
            Eval::Interrupted(i) => &i.partial,
        }
    }

    /// Consume into the payload, discarding completeness information.
    pub fn into_value(self) -> T {
        match self {
            Eval::Complete(v) => v,
            Eval::Interrupted(i) => i.partial,
        }
    }

    /// `true` when the result is exact.
    pub fn is_complete(&self) -> bool {
        matches!(self, Eval::Complete(_))
    }

    /// `true` when the result is a best-effort partial answer.
    pub fn is_partial(&self) -> bool {
        matches!(self, Eval::Interrupted(_))
    }

    /// The interruption reason, if any.
    pub fn reason(&self) -> Option<InterruptReason> {
        match self {
            Eval::Complete(_) => None,
            Eval::Interrupted(i) => Some(i.reason),
        }
    }

    /// Map the payload while preserving completeness.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Eval<U> {
        match self {
            Eval::Complete(v) => Eval::Complete(f(v)),
            Eval::Interrupted(i) => Eval::Interrupted(Interrupted {
                reason: i.reason,
                partial: f(i.partial),
            }),
        }
    }

    /// Expect a complete result (test helper).
    ///
    /// # Panics
    /// If the evaluation was interrupted.
    pub fn expect_complete(self, msg: &str) -> T {
        match self {
            Eval::Complete(v) => v,
            Eval::Interrupted(i) => panic!("{msg}: interrupted ({})", i.reason),
        }
    }
}

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    /// `u64::MAX` means no step limit.
    max_steps: u64,
    steps: AtomicU64,
}

/// A cheap, clonable, thread-safe resource budget.
///
/// `Budget::default()` / [`Budget::unlimited`] is free (no allocation,
/// one branch per tick). Limited budgets share one atomic step counter
/// across clones, so handing the same budget to parallel workers
/// yields a *global* step budget.
#[derive(Debug, Clone, Default)]
pub struct Budget(Option<Arc<Inner>>);

impl Budget {
    /// No limits; `tick` never fails. This is the default.
    pub fn unlimited() -> Budget {
        Budget(None)
    }

    /// Budget with explicit (optional) step and deadline limits.
    ///
    /// With both `None` this still allocates a shared flag, so the
    /// returned budget is cancellable — unlike [`Budget::unlimited`].
    pub fn limited(max_steps: Option<u64>, deadline: Option<Instant>) -> Budget {
        Budget(Some(Arc::new(Inner {
            cancelled: AtomicBool::new(false),
            deadline,
            max_steps: max_steps.unwrap_or(u64::MAX),
            steps: AtomicU64::new(0),
        })))
    }

    /// Budget limited to `max_steps` elementary inference steps.
    pub fn with_steps(max_steps: u64) -> Budget {
        Budget::limited(Some(max_steps), None)
    }

    /// Budget limited to an absolute wall-clock deadline.
    pub fn with_deadline(deadline: Instant) -> Budget {
        Budget::limited(None, Some(deadline))
    }

    /// Budget limited to `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Budget {
        Budget::with_deadline(Instant::now() + timeout)
    }

    /// Unlimited but cancellable (for cooperative shutdown).
    pub fn cancellable() -> Budget {
        Budget::limited(None, None)
    }

    /// `true` when this is the free unlimited budget.
    pub fn is_unlimited(&self) -> bool {
        self.0.is_none()
    }

    /// Request cooperative cancellation. Every clone of this budget
    /// observes it at its next probe. No-op on an unlimited budget.
    pub fn cancel(&self) {
        if let Some(inner) = &self.0 {
            inner.cancelled.store(true, Ordering::Relaxed);
        }
    }

    /// Elementary steps charged so far (0 for unlimited budgets).
    pub fn steps_used(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |inner| inner.steps.load(Ordering::Relaxed))
    }

    /// Charge one elementary inference step.
    ///
    /// The step limit is enforced exactly; deadline and cancellation
    /// are probed every [`PROBE_INTERVAL`] ticks (and by [`Budget::check`]).
    #[inline]
    pub fn tick(&self) -> Result<(), InterruptReason> {
        let Some(inner) = &self.0 else {
            return Ok(());
        };
        let prior = inner.steps.fetch_add(1, Ordering::Relaxed);
        if prior >= inner.max_steps {
            return Err(InterruptReason::Steps);
        }
        if prior % PROBE_INTERVAL == 0 {
            return Self::probe(inner);
        }
        Ok(())
    }

    /// Charge `n` steps at once (used by the grounder, whose unit of
    /// work is a batch of rule instances).
    #[inline]
    pub fn charge(&self, n: u64) -> Result<(), InterruptReason> {
        let Some(inner) = &self.0 else {
            return Ok(());
        };
        let prior = inner.steps.fetch_add(n, Ordering::Relaxed);
        if prior.saturating_add(n) > inner.max_steps {
            return Err(InterruptReason::Steps);
        }
        Self::probe(inner)
    }

    /// An amortised per-item ticker for hot loops.
    ///
    /// [`Ticker::tick`] pays for items in pre-claimed batches of up to
    /// [`TICK_BATCH`], so the loop performs one atomic RMW per batch
    /// instead of one per item (measured ≤5% overhead on the worklist
    /// fixpoint vs ~20% for per-item [`Budget::tick`]). A batch claims
    /// `min(TICK_BATCH, steps remaining)` and any unused credit is
    /// refunded when the ticker drops, so step accounting is **exact**
    /// at ticker-drop boundaries: a loop of `n` items charges exactly
    /// `n` steps no matter how many tickers served it.
    ///
    /// Parallel engines give **each worker its own ticker** over the
    /// same shared budget: the step counter stays global (all clones
    /// share one atomic), while the worker-local credit keeps cache-line
    /// contention to one RMW per batch per worker. In-flight credit can
    /// transiently overstate usage by up to `workers × (TICK_BATCH - 1)`
    /// steps, which near exhaustion may trip a concurrent claimer a few
    /// steps early — a conservative error the anytime contract already
    /// absorbs — and is returned at drop. A deadline or cancellation
    /// trip is observed by every worker at its next batch boundary.
    pub fn ticker(&self) -> Ticker<'_> {
        Ticker {
            budget: self,
            credit: 0,
        }
    }

    /// Atomically claims up to `n` steps: charges `min(n, remaining)`
    /// and returns the claimed amount. `Err(Steps)` when none remain;
    /// also probes deadline/cancellation (refunding the claim on trip).
    fn claim(&self, n: u64) -> Result<u64, InterruptReason> {
        let Some(inner) = &self.0 else {
            return Ok(n);
        };
        let mut claimed = 0;
        inner
            .steps
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                claimed = inner.max_steps.saturating_sub(s).min(n);
                if claimed == 0 {
                    None
                } else {
                    Some(s + claimed)
                }
            })
            .map_err(|_| InterruptReason::Steps)?;
        if let Err(reason) = Self::probe(inner) {
            self.refund(claimed);
            return Err(reason);
        }
        Ok(claimed)
    }

    /// Returns unclaimed-but-charged steps to the pool.
    fn refund(&self, n: u64) {
        if n > 0 {
            if let Some(inner) = &self.0 {
                inner.steps.fetch_sub(n, Ordering::Relaxed);
            }
        }
    }

    /// Probe deadline and cancellation without charging a step.
    pub fn check(&self) -> Result<(), InterruptReason> {
        match &self.0 {
            None => Ok(()),
            Some(inner) => {
                if inner.steps.load(Ordering::Relaxed) > inner.max_steps {
                    return Err(InterruptReason::Steps);
                }
                Self::probe(inner)
            }
        }
    }

    #[inline(never)]
    fn probe(inner: &Inner) -> Result<(), InterruptReason> {
        if inner.cancelled.load(Ordering::Relaxed) {
            return Err(InterruptReason::Cancelled);
        }
        if let Some(deadline) = inner.deadline {
            if Instant::now() >= deadline {
                return Err(InterruptReason::Deadline);
            }
        }
        Ok(())
    }
}

/// How many steps a [`Ticker`] claims per batch (fewer near the step
/// limit). Small enough that transient in-flight credit is negligible
/// against any human-scale budget, large enough to amortise the atomic
/// away.
pub const TICK_BATCH: u32 = 64;

/// Batched front-end to a [`Budget`] for hot loops; see
/// [`Budget::ticker`]. Unused credit is refunded on drop.
#[derive(Debug)]
pub struct Ticker<'b> {
    budget: &'b Budget,
    credit: u64,
}

impl Ticker<'_> {
    /// Charge one item, claiming the budget in batches of up to
    /// [`TICK_BATCH`].
    #[inline]
    pub fn tick(&mut self) -> Result<(), InterruptReason> {
        if self.credit == 0 {
            self.credit = self.budget.claim(u64::from(TICK_BATCH))?;
        }
        self.credit -= 1;
        Ok(())
    }
}

impl Drop for Ticker<'_> {
    fn drop(&mut self) {
        self.budget.refund(self.credit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_fails() {
        let b = Budget::unlimited();
        for _ in 0..100_000 {
            assert!(b.tick().is_ok());
        }
        assert!(b.check().is_ok());
        assert_eq!(b.steps_used(), 0);
        b.cancel(); // no-op
        assert!(b.tick().is_ok());
    }

    #[test]
    fn step_budget_is_exact() {
        let b = Budget::with_steps(10);
        for _ in 0..10 {
            assert!(b.tick().is_ok());
        }
        assert_eq!(b.tick(), Err(InterruptReason::Steps));
        assert_eq!(b.tick(), Err(InterruptReason::Steps));
    }

    #[test]
    fn ticker_amortises_but_still_trips() {
        // Budget for two batches: the ticker must allow at most
        // 2 * TICK_BATCH items and then fail with Steps.
        let b = Budget::with_steps(2 * u64::from(TICK_BATCH));
        let mut t = b.ticker();
        for _ in 0..2 * TICK_BATCH {
            assert!(t.tick().is_ok());
        }
        assert_eq!(t.tick(), Err(InterruptReason::Steps));
        // A pre-cancelled budget trips a fresh ticker on its first batch.
        let c = Budget::cancellable();
        c.cancel();
        assert_eq!(c.ticker().tick(), Err(InterruptReason::Cancelled));
        // Unlimited budgets cost nothing and never trip.
        let u = Budget::unlimited();
        let mut t = u.ticker();
        for _ in 0..10 * TICK_BATCH {
            assert!(t.tick().is_ok());
        }
        assert_eq!(u.steps_used(), 0);
    }

    #[test]
    fn ticker_accounting_is_exact() {
        // A short-lived ticker refunds its unused credit: n ticks cost
        // exactly n steps at drop, no matter how the batches fell.
        let b = Budget::with_steps(1_000);
        {
            let mut t = b.ticker();
            for _ in 0..5 {
                assert!(t.tick().is_ok());
            }
        }
        assert_eq!(b.steps_used(), 5);
        // Near the cap the claim shrinks to what remains, so a budget
        // smaller than one batch still admits exactly max_steps items —
        // even spread across several tickers (one per stratum/worker).
        let b = Budget::with_steps(10);
        for _ in 0..2 {
            let mut t = b.ticker();
            for _ in 0..5 {
                assert!(t.tick().is_ok());
            }
        }
        assert_eq!(b.steps_used(), 10);
        assert_eq!(b.ticker().tick(), Err(InterruptReason::Steps));
    }

    #[test]
    fn deadline_observed_within_probe_interval() {
        let b = Budget::with_deadline(Instant::now());
        let mut failed = false;
        for _ in 0..=PROBE_INTERVAL {
            if b.tick().is_err() {
                failed = true;
                break;
            }
        }
        assert!(
            failed,
            "expired deadline not observed within one probe window"
        );
    }

    #[test]
    fn cancellation_is_shared_across_clones() {
        let b = Budget::cancellable();
        let c = b.clone();
        assert!(c.check().is_ok());
        b.cancel();
        assert_eq!(c.check(), Err(InterruptReason::Cancelled));
        let mut seen = Ok(());
        for _ in 0..=PROBE_INTERVAL {
            seen = c.tick();
            if seen.is_err() {
                break;
            }
        }
        assert_eq!(seen, Err(InterruptReason::Cancelled));
    }

    #[test]
    fn charge_bulk() {
        let b = Budget::with_steps(100);
        assert!(b.charge(60).is_ok());
        assert_eq!(b.charge(60), Err(InterruptReason::Steps));
    }

    #[test]
    fn shared_counter_across_threads() {
        let b = Budget::with_steps(1000);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let b = b.clone();
                    s.spawn(move || {
                        let mut ok = 0u64;
                        while b.tick().is_ok() {
                            ok += 1;
                        }
                        ok
                    })
                })
                .collect();
            let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total, 1000);
        });
    }

    #[test]
    fn eval_accessors() {
        let c: Eval<u32> = Eval::Complete(3);
        assert!(c.is_complete() && !c.is_partial());
        assert_eq!(c.reason(), None);
        assert_eq!(*c.value(), 3);
        let i: Eval<u32> = Eval::Interrupted(Interrupted {
            reason: InterruptReason::Deadline,
            partial: 2,
        });
        assert!(i.is_partial());
        assert_eq!(i.reason(), Some(InterruptReason::Deadline));
        assert_eq!(i.clone().map(|v| v * 2).into_value(), 4);
    }
}
