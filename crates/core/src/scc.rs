//! Strongly connected components (iterative Tarjan).
//!
//! A single generic SCC routine shared by every dependency-graph
//! consumer in the workspace: classical stratification
//! (`olp_classic::graph`) and the ordered-semantics condensation layer
//! (`olp_semantics::decomp`). The graph is a plain adjacency list over
//! dense `0..n` node ids.

/// Tarjan's strongly connected components over the adjacency list
/// `adj` (`adj[v]` lists the successors of node `v`; entries may be
/// duplicated and may include self-loops).
///
/// Returns `(scc_of, n_sccs)` where `scc_of[v]` is the component id of
/// node `v`. Component ids are in **reverse topological order**: a
/// component only has edges into components with *smaller* ids, so id 0
/// is a sink/leaf and processing components in increasing id order
/// visits every dependency before its dependents.
///
/// The implementation is iterative (explicit work stack), so deep
/// chains cannot overflow the call stack.
pub fn tarjan_scc(adj: &[Vec<u32>]) -> (Vec<u32>, usize) {
    tarjan_scc_ranges(adj.len(), |v| &adj[v])
}

/// [`tarjan_scc`] over a CSR graph: node `v`'s successors are
/// `edges[off[v]..off[v + 1]]`. Same contract and same component
/// numbering as the adjacency-list form for the same edge order —
/// this is the allocation-free fast path for large dense-id graphs
/// (the flat ground-program compiler).
pub fn tarjan_scc_csr(off: &[u32], edges: &[u32]) -> (Vec<u32>, usize) {
    let n = off.len().saturating_sub(1);
    tarjan_scc_ranges(n, |v| &edges[off[v] as usize..off[v + 1] as usize])
}

fn tarjan_scc_ranges<'g>(n: usize, succ: impl Fn(usize) -> &'g [u32]) -> (Vec<u32>, usize) {
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut scc_of = vec![UNSET; n];
    let mut next_index = 0u32;
    let mut next_scc = 0u32;

    // Work stack frames: (node, child cursor).
    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        let mut work: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut cursor)) = work.last_mut() {
            if *cursor == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = succ(v).get(*cursor) {
                let w = w as usize;
                *cursor += 1;
                if index[w] == UNSET {
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                // Done with v.
                if low[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("tarjan stack");
                        on_stack[w] = false;
                        scc_of[w] = next_scc;
                        if w == v {
                            break;
                        }
                    }
                    next_scc += 1;
                }
                work.pop();
                if let Some(&mut (parent, _)) = work.last_mut() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }
    (scc_of, next_scc as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let (scc, n) = tarjan_scc(&[]);
        assert!(scc.is_empty());
        assert_eq!(n, 0);
    }

    #[test]
    fn cycle_and_tail() {
        // 0 <-> 1, 2 -> 0: {0,1} one component, {2} another, and 2's
        // component id is larger (reverse topological).
        let adj = vec![vec![1], vec![0], vec![0]];
        let (scc, n) = tarjan_scc(&adj);
        assert_eq!(n, 2);
        assert_eq!(scc[0], scc[1]);
        assert!(scc[2] > scc[0]);
    }

    #[test]
    fn disconnected_nodes_are_singletons() {
        let adj = vec![vec![], vec![], vec![]];
        let (scc, n) = tarjan_scc(&adj);
        assert_eq!(n, 3);
        assert_ne!(scc[0], scc[1]);
        assert_ne!(scc[1], scc[2]);
    }

    #[test]
    fn self_loop_is_its_own_component() {
        let adj = vec![vec![0u32], vec![0]];
        let (scc, n) = tarjan_scc(&adj);
        assert_eq!(n, 2);
        assert!(scc[1] > scc[0], "1 depends on 0, so 0 is the sink");
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        let n = 100_000;
        let adj: Vec<Vec<u32>> = (0..n)
            .map(|v| if v == 0 { vec![] } else { vec![v as u32 - 1] })
            .collect();
        let (scc, n_sccs) = tarjan_scc(&adj);
        assert_eq!(n_sccs, n);
        // Chain v -> v-1: deeper nodes have larger ids.
        assert!(scc[0] < scc[n - 1]);
    }

    #[test]
    fn csr_form_matches_adjacency_list() {
        let adj = vec![vec![1, 2], vec![2], vec![3, 1], vec![], vec![0]];
        let mut off = vec![0u32];
        let mut edges = Vec::new();
        for outs in &adj {
            edges.extend_from_slice(outs);
            off.push(edges.len() as u32);
        }
        assert_eq!(tarjan_scc(&adj), tarjan_scc_csr(&off, &edges));
    }

    #[test]
    fn csr_empty_graph() {
        let (scc, n) = tarjan_scc_csr(&[0], &[]);
        assert!(scc.is_empty());
        assert_eq!(n, 0);
    }

    #[test]
    fn reverse_topological_invariant() {
        // Random-ish small graph: check the invariant directly.
        let adj = vec![vec![1, 2], vec![2], vec![3, 1], vec![], vec![0]];
        let (scc, _) = tarjan_scc(&adj);
        for (v, outs) in adj.iter().enumerate() {
            for &w in outs {
                assert!(
                    scc[v] >= scc[w as usize],
                    "edge {v}->{w} must not point to a larger component id"
                );
            }
        }
    }
}
