//! A dense, growable bit set over `usize` indices.
//!
//! Interpretations, component up-sets and the order matrix are all sets
//! over dense `u32` id spaces; a `Vec<u64>` bit set is the natural
//! representation and keeps the semantics engine allocation-light.

/// A dense bit set.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates an empty set with capacity for indices `0..n`.
    pub fn with_capacity(n: usize) -> Self {
        BitSet {
            words: Vec::with_capacity(n.div_ceil(64)),
            len: 0,
        }
    }

    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn loc(i: usize) -> (usize, u64) {
        (i / 64, 1u64 << (i % 64))
    }

    /// Inserts `i`; returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        let (w, m) = Self::loc(i);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let newly = self.words[w] & m == 0;
        self.words[w] |= m;
        self.len += usize::from(newly);
        newly
    }

    /// Removes `i`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        let (w, m) = Self::loc(i);
        if w >= self.words.len() {
            return false;
        }
        let present = self.words[w] & m != 0;
        self.words[w] &= !m;
        self.len -= usize::from(present);
        self.normalize();
        present
    }

    /// Drops trailing zero words so that logically equal sets compare
    /// equal under the derived `PartialEq`/`Hash` regardless of their
    /// mutation history.
    fn normalize(&mut self) {
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        let (w, m) = Self::loc(i);
        self.words.get(w).is_some_and(|&word| word & m != 0)
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all elements, keeping capacity.
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .enumerate()
            .all(|(i, &w)| w & !other.words.get(i).copied().unwrap_or(0) == 0)
    }

    /// Whether the sets intersect.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(&a, &b)| a & b != 0)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &BitSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (i, &w) in other.words.iter().enumerate() {
            self.words[i] |= w;
        }
        self.normalize();
        self.recount();
    }

    /// In-place difference (`self \ other`).
    pub fn difference_with(&mut self, other: &BitSet) {
        for (i, w) in self.words.iter_mut().enumerate() {
            *w &= !other.words.get(i).copied().unwrap_or(0);
        }
        self.normalize();
        self.recount();
    }

    fn recount(&mut self) {
        self.len = self.words.iter().map(|w| w.count_ones() as usize).sum();
    }

    /// Iterates over members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut word = w;
            std::iter::from_fn(move || {
                if word == 0 {
                    None
                } else {
                    let bit = word.trailing_zeros() as usize;
                    word &= word - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }
}

/// A fixed-capacity bit set with atomic word access: the shared truth
/// state of the morsel-driven parallel fixpoint. Bits are only ever
/// **set**, never cleared (the least-fixpoint iterates are increasing),
/// so `Release` publication on [`AtomicBitSet::set`]/[`AtomicBitSet::or_word`]
/// paired with `Acquire` loads on [`AtomicBitSet::contains`] gives every
/// reader a monotone view: once a bit is observed set, it stays set.
#[derive(Debug, Default)]
pub struct AtomicBitSet {
    words: Vec<std::sync::atomic::AtomicU64>,
}

impl AtomicBitSet {
    /// Creates a zeroed set covering indices `0..n`.
    pub fn new(n: usize) -> Self {
        let mut words = Vec::with_capacity(n.div_ceil(64));
        words.resize_with(n.div_ceil(64), || std::sync::atomic::AtomicU64::new(0));
        AtomicBitSet { words }
    }

    /// Capacity in bits.
    pub fn capacity(&self) -> usize {
        self.words.len() * 64
    }

    /// Whether no bit can be stored (zero capacity).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Membership test (`Acquire`: observing a published bit also
    /// observes everything its publisher wrote before setting it).
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        let (w, m) = BitSet::loc(i);
        self.words[w].load(std::sync::atomic::Ordering::Acquire) & m != 0
    }

    /// Sets bit `i` (`Release`).
    #[inline]
    pub fn set(&self, i: usize) {
        let (w, m) = BitSet::loc(i);
        self.words[w].fetch_or(m, std::sync::atomic::Ordering::Release);
    }

    /// ORs `word` into word slot `w` (`Release`) — the bulk-merge
    /// primitive for publishing a whole per-worker [`BitSet`] at once.
    #[inline]
    pub fn or_word(&self, w: usize, word: u64) {
        if word != 0 {
            self.words[w].fetch_or(word, std::sync::atomic::Ordering::Release);
        }
    }

    /// Merges a plain [`BitSet`] into this one word-by-word.
    pub fn merge(&self, other: &BitSet) {
        for (w, &word) in other.words.iter().enumerate() {
            self.or_word(w, word);
        }
    }

    /// Snapshots the current contents into a plain [`BitSet`]
    /// (single-threaded epilogue use; not linearizable mid-run).
    pub fn snapshot(&self) -> BitSet {
        let mut out = BitSet::new();
        for (w, a) in self.words.iter().enumerate() {
            let word = a.load(std::sync::atomic::Ordering::Acquire);
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                out.insert(w * 64 + b);
            }
        }
        out
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let mut s = BitSet::new();
        for i in iter {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new();
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.contains(3));
        assert!(!s.contains(2));
        assert!(!s.contains(1000));
        assert_eq!(s.len(), 1);
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert!(s.is_empty());
    }

    #[test]
    fn grows_across_word_boundaries() {
        let mut s = BitSet::with_capacity(10);
        for i in [0, 63, 64, 65, 300] {
            assert!(s.insert(i));
        }
        assert_eq!(s.len(), 5);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 65, 300]);
    }

    #[test]
    fn subset_and_intersects() {
        let a: BitSet = [1, 5, 9].into_iter().collect();
        let b: BitSet = [1, 5, 9, 200].into_iter().collect();
        let c: BitSet = [2, 4].into_iter().collect();
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_subset(&a));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        let empty = BitSet::new();
        assert!(empty.is_subset(&a));
        assert!(empty.is_subset(&empty));
        assert!(!empty.intersects(&a));
    }

    #[test]
    fn union_and_difference() {
        let mut a: BitSet = [1, 2, 70].into_iter().collect();
        let b: BitSet = [2, 3, 400].into_iter().collect();
        a.union_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2, 3, 70, 400]);
        a.difference_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 70]);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn equality_ignores_mutation_history() {
        // A set that grew and shrank must equal a freshly built one.
        let mut a = BitSet::new();
        a.insert(500);
        a.insert(3);
        a.remove(500);
        let b: BitSet = [3].into_iter().collect();
        assert_eq!(a, b);
        let mut c = BitSet::with_capacity(1000);
        c.insert(3);
        assert_eq!(a, c);
        a.remove(3);
        assert_eq!(a, BitSet::new());
    }

    #[test]
    fn atomic_set_merge_snapshot() {
        let a = AtomicBitSet::new(300);
        assert!(a.capacity() >= 300);
        a.set(0);
        a.set(65);
        a.set(299);
        assert!(a.contains(65));
        assert!(!a.contains(66));
        let local: BitSet = [1, 65, 128].into_iter().collect();
        a.merge(&local);
        let snap = a.snapshot();
        assert_eq!(snap.iter().collect::<Vec<_>>(), vec![0, 1, 65, 128, 299]);
    }

    #[test]
    fn atomic_concurrent_publication() {
        let a = AtomicBitSet::new(64 * 64);
        std::thread::scope(|s| {
            for t in 0..4usize {
                let a = &a;
                s.spawn(move || {
                    for i in (t..64 * 64).step_by(4) {
                        a.set(i);
                    }
                });
            }
        });
        assert_eq!(a.snapshot().len(), 64 * 64);
    }

    #[test]
    fn clear_keeps_working() {
        let mut s: BitSet = (0..100).collect();
        assert_eq!(s.len(), 100);
        s.clear();
        assert!(s.is_empty());
        assert!(s.insert(42));
        assert_eq!(s.len(), 1);
    }
}
