//! Literals: signed atoms.
//!
//! The paper's distinguishing feature is that **classical negation may
//! appear in rule heads** (not only bodies), so literals carry an
//! explicit [`Sign`]. Two representations exist:
//!
//! * [`Literal`] — non-ground, as written in rules (predicate + term
//!   arguments + sign);
//! * [`GLit`] — ground and packed into a single `u32`: the [`AtomId`]
//!   shifted left one bit, with the sign in bit 0. A ground rule body is
//!   a flat `Box<[GLit]>`, and literal complementation is an XOR.

use crate::gterm::AtomId;
use crate::pred::PredId;
use crate::term::Term;

/// Polarity of a literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sign {
    /// A positive literal `A`.
    Pos,
    /// A negative literal `¬A` (classical negation).
    Neg,
}

impl Sign {
    /// The opposite sign.
    #[inline]
    pub fn flip(self) -> Sign {
        match self {
            Sign::Pos => Sign::Neg,
            Sign::Neg => Sign::Pos,
        }
    }

    /// `true` for [`Sign::Pos`].
    #[inline]
    pub fn is_pos(self) -> bool {
        matches!(self, Sign::Pos)
    }
}

/// A non-ground literal `p(t…)` or `¬p(t…)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Literal {
    /// Polarity.
    pub sign: Sign,
    /// Predicate.
    pub pred: PredId,
    /// Argument terms; length equals the predicate arity.
    pub args: Vec<Term>,
}

impl Literal {
    /// Builds a positive literal.
    pub fn pos(pred: PredId, args: Vec<Term>) -> Self {
        Literal {
            sign: Sign::Pos,
            pred,
            args,
        }
    }

    /// Builds a negative literal.
    pub fn neg(pred: PredId, args: Vec<Term>) -> Self {
        Literal {
            sign: Sign::Neg,
            pred,
            args,
        }
    }

    /// The complementary literal (same atom, flipped sign).
    pub fn complement(&self) -> Literal {
        Literal {
            sign: self.sign.flip(),
            pred: self.pred,
            args: self.args.clone(),
        }
    }

    /// Whether all argument terms are variable-free.
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(Term::is_ground)
    }

    /// Collects the variables occurring in the arguments into `out`
    /// (deduplicated, first-occurrence order).
    pub fn collect_vars(&self, out: &mut Vec<crate::symbol::Sym>) {
        for t in &self.args {
            t.collect_vars(out);
        }
    }
}

/// A packed ground literal: `AtomId` in the high 31 bits, sign in bit 0
/// (0 = positive, 1 = negative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GLit(u32);

impl GLit {
    /// The positive literal over `atom`.
    #[inline]
    pub fn pos(atom: AtomId) -> GLit {
        debug_assert!(atom.0 < u32::MAX / 2, "atom id overflow in GLit");
        GLit(atom.0 << 1)
    }

    /// The negative literal over `atom`.
    #[inline]
    pub fn neg(atom: AtomId) -> GLit {
        debug_assert!(atom.0 < u32::MAX / 2, "atom id overflow in GLit");
        GLit((atom.0 << 1) | 1)
    }

    /// Builds a literal with the given sign.
    #[inline]
    pub fn new(sign: Sign, atom: AtomId) -> GLit {
        match sign {
            Sign::Pos => GLit::pos(atom),
            Sign::Neg => GLit::neg(atom),
        }
    }

    /// The underlying atom.
    #[inline]
    pub fn atom(self) -> AtomId {
        AtomId(self.0 >> 1)
    }

    /// The polarity.
    #[inline]
    pub fn sign(self) -> Sign {
        if self.0 & 1 == 0 {
            Sign::Pos
        } else {
            Sign::Neg
        }
    }

    /// `true` if positive.
    #[inline]
    pub fn is_pos(self) -> bool {
        self.0 & 1 == 0
    }

    /// The complementary literal `¬A` / `A`.
    #[inline]
    pub fn complement(self) -> GLit {
        GLit(self.0 ^ 1)
    }

    /// The raw packed code. Useful as a dense index: literals over atoms
    /// `0..n` occupy codes `0..2n`.
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds a literal from [`GLit::code`].
    #[inline]
    pub fn from_code(code: usize) -> GLit {
        GLit(code as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_flip_is_involutive() {
        assert_eq!(Sign::Pos.flip(), Sign::Neg);
        assert_eq!(Sign::Neg.flip(), Sign::Pos);
        assert_eq!(Sign::Pos.flip().flip(), Sign::Pos);
        assert!(Sign::Pos.is_pos());
        assert!(!Sign::Neg.is_pos());
    }

    #[test]
    fn glit_packs_and_unpacks() {
        let a = AtomId(42);
        let p = GLit::pos(a);
        let n = GLit::neg(a);
        assert_eq!(p.atom(), a);
        assert_eq!(n.atom(), a);
        assert_eq!(p.sign(), Sign::Pos);
        assert_eq!(n.sign(), Sign::Neg);
        assert!(p.is_pos());
        assert!(!n.is_pos());
        assert_ne!(p, n);
        assert_eq!(GLit::new(Sign::Pos, a), p);
        assert_eq!(GLit::new(Sign::Neg, a), n);
    }

    #[test]
    fn complement_is_involutive_and_changes_only_sign() {
        let a = AtomId(7);
        let p = GLit::pos(a);
        assert_eq!(p.complement(), GLit::neg(a));
        assert_eq!(p.complement().complement(), p);
        assert_eq!(p.complement().atom(), a);
    }

    #[test]
    fn codes_are_dense() {
        assert_eq!(GLit::pos(AtomId(0)).code(), 0);
        assert_eq!(GLit::neg(AtomId(0)).code(), 1);
        assert_eq!(GLit::pos(AtomId(1)).code(), 2);
        assert_eq!(GLit::neg(AtomId(1)).code(), 3);
        for code in 0..16 {
            assert_eq!(GLit::from_code(code).code(), code);
        }
    }
}
