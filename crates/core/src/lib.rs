//! # olp-core — data model for ordered logic programming
//!
//! This crate implements the basic language of *"Extending Logic
//! Programming"* (Laenens, Saccà & Vermeir, SIGMOD 1990): terms,
//! predicates, literals (with classical negation allowed in rule heads),
//! rules, *components* (modules) and *ordered programs* (finite partially
//! ordered sets of components).
//!
//! ## Representation strategy
//!
//! Logic-programming engines are dominated by term and atom comparisons,
//! and a naive `Rc`-based term graph both fragments the heap and makes
//! ownership awkward. Everything here is therefore **interned**:
//!
//! * strings → [`Sym`] (a `u32`) via [`SymbolTable`],
//! * predicate symbol + arity → [`PredId`] via [`PredTable`],
//! * ground terms → [`GTermId`] via a hash-consing [`TermStore`],
//! * ground atoms → [`AtomId`] via a hash-consing [`AtomStore`],
//! * signed ground literals → [`GLit`], a single `u32` (atom id shifted
//!   left, sign in the low bit), so a rule body is a flat `Box<[GLit]>`.
//!
//! All stores live in a single [`World`] value with plain single
//! ownership; ids are `Copy` and freely shareable. Equality of ground
//! terms/atoms is id equality.
//!
//! Non-ground syntax (rules as written, before grounding) uses the owned
//! [`Term`] tree, which is cheap because rules are small and grounding
//! immediately converts to ids.
//!
//! ## Module map
//!
//! * [`fxhash`] — the FxHash algorithm (local implementation; see DESIGN.md).
//! * [`symbol`] — string interning.
//! * [`pred`] — predicate table.
//! * [`gterm`] — hash-consed ground terms and atoms.
//! * [`interp`] — consistent 3-valued interpretations over ground atoms.
//! * [`literal`] — signs, non-ground literals, packed ground literals.
//! * [`term`] — non-ground terms, arithmetic expressions, comparisons.
//! * [`rule`] — rules and body items.
//! * [`program`] — components, ordered programs, the component partial order.
//! * [`bitset`] — a small dense bit set used throughout the workspace.
//! * [`budget`] — the engine-wide resource governor (step budgets,
//!   deadlines, cancellation, anytime [`Eval`] outcomes).
//! * [`scc`] — generic iterative Tarjan strongly-connected components,
//!   shared by every dependency-graph consumer.
//! * [`span`] — source positions ([`Pos`]) and the per-program
//!   [`SpanTable`] recorded by the parser for diagnostics.
//! * [`world`] — the [`World`] bundle of interners.

#![warn(missing_docs)]
#![warn(clippy::pedantic)]
// Pedantic lints we deliberately opt out of: this is an interner-heavy
// crate where u32 ids and usize indices interconvert constantly, most
// constructors are obviously-useful without `#[must_use]`, and the
// panics are index-contract violations already documented on the types.
#![allow(
    clippy::must_use_candidate,
    clippy::missing_panics_doc,
    clippy::missing_errors_doc,
    clippy::module_name_repetitions,
    clippy::cast_possible_truncation,
    clippy::cast_precision_loss,
    clippy::doc_markdown,
    clippy::too_many_lines,
    clippy::similar_names,
    clippy::many_single_char_names,
    clippy::return_self_not_must_use
)]

pub mod bitset;
pub mod budget;
pub mod fxhash;
pub mod gterm;
pub mod interp;
pub mod literal;
pub mod pred;
pub mod program;
pub mod rule;
pub mod scc;
pub mod span;
pub mod symbol;
pub mod term;
pub mod world;

pub use bitset::{AtomicBitSet, BitSet};
pub use budget::{Budget, Eval, InterruptReason, Interrupted, Ticker};
pub use fxhash::{FxHashMap, FxHashSet};
pub use gterm::{AtomId, AtomStore, GTerm, GTermId, GroundAtom, TermStore};
pub use interp::{Inconsistency, Interpretation, Truth};
pub use literal::{GLit, Literal, Sign};
pub use pred::{PredId, PredTable};
pub use program::{CompId, Component, Order, OrderError, OrderedProgram};
pub use rule::{Aexp, BodyItem, Cmp, CmpOp, EvalError, Rule};
pub use scc::{tarjan_scc, tarjan_scc_csr};
pub use span::{Pos, RuleSpan, SpanTable};
pub use symbol::{Sym, SymbolTable};
pub use term::Term;
pub use world::World;
