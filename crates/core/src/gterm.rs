//! Hash-consed ground terms and ground atoms.
//!
//! The Herbrand universe of a program with function symbols is infinite;
//! the engine only ever materialises the finite fragment it touches, and
//! every distinct ground term is stored **exactly once**. This is the
//! "term graph ownership" answer: instead of `Rc<Term>` graphs, a term is
//! a [`GTermId`] (`u32`) into a [`TermStore`] arena, and structural
//! equality is id equality. Ground atoms get the same treatment in
//! [`AtomStore`].

use crate::fxhash::FxHashMap;
use crate::pred::PredId;
use crate::symbol::Sym;

/// An interned ground term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GTermId(pub u32);

impl GTermId {
    /// The raw index, for use as a dense-array key.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The shape of a ground term. Children are ids, so the whole store forms
/// a DAG with maximal sharing.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GTerm {
    /// A constant symbol, e.g. `penguin`.
    Const(Sym),
    /// An integer constant, e.g. `16`.
    Int(i64),
    /// A compound term `f(t1, …, tn)` with `n ≥ 1`.
    Func(Sym, Box<[GTermId]>),
}

/// Hash-consing arena for ground terms.
#[derive(Debug, Default, Clone)]
pub struct TermStore {
    terms: Vec<GTerm>,
    by_term: FxHashMap<GTerm, GTermId>,
}

impl TermStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    fn intern(&mut self, t: GTerm) -> GTermId {
        if let Some(&id) = self.by_term.get(&t) {
            return id;
        }
        let id = GTermId(u32::try_from(self.terms.len()).expect("term store overflow"));
        self.terms.push(t.clone());
        self.by_term.insert(t, id);
        id
    }

    /// Interns the constant `sym`.
    pub fn constant(&mut self, sym: Sym) -> GTermId {
        self.intern(GTerm::Const(sym))
    }

    /// Interns the integer `i`.
    pub fn int(&mut self, i: i64) -> GTermId {
        self.intern(GTerm::Int(i))
    }

    /// Interns the compound term `f(args…)`.
    ///
    /// # Panics
    /// Panics if `args` is empty — zero-arity "functions" are constants.
    pub fn func(&mut self, f: Sym, args: &[GTermId]) -> GTermId {
        assert!(!args.is_empty(), "0-ary function terms must be constants");
        self.intern(GTerm::Func(f, args.into()))
    }

    /// The shape of term `id`.
    pub fn get(&self, id: GTermId) -> &GTerm {
        &self.terms[id.index()]
    }

    /// Looks up an already-interned term without interning it — the
    /// read-only twin of the intern methods, for callers holding a
    /// shared (`&`) world such as frozen KB snapshots. Children of a
    /// `Func` must already be ids from *this* store.
    pub fn lookup(&self, t: &GTerm) -> Option<GTermId> {
        self.by_term.get(t).copied()
    }

    /// If `id` is an integer constant, its value.
    pub fn as_int(&self, id: GTermId) -> Option<i64> {
        match self.terms[id.index()] {
            GTerm::Int(i) => Some(i),
            _ => None,
        }
    }

    /// The nesting depth of `id`: constants and ints have depth 0,
    /// `f(t…)` has depth `1 + max(depth(t…))`.
    ///
    /// Used by the grounder to enforce the Herbrand-universe depth bound.
    pub fn depth(&self, id: GTermId) -> u32 {
        match self.get(id) {
            GTerm::Const(_) | GTerm::Int(_) => 0,
            GTerm::Func(_, args) => 1 + args.iter().map(|&a| self.depth(a)).max().unwrap_or(0),
        }
    }

    /// Number of distinct ground terms materialised.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates over all term ids in id order.
    pub fn ids(&self) -> impl Iterator<Item = GTermId> {
        (0..self.terms.len() as u32).map(GTermId)
    }
}

/// An interned ground atom `p(t1, …, tn)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AtomId(pub u32);

impl AtomId {
    /// The raw index, for use as a dense-array key.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The content of a ground atom.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GroundAtom {
    /// The predicate.
    pub pred: PredId,
    /// The argument terms; length equals the predicate's arity.
    pub args: Box<[GTermId]>,
}

/// Hash-consing arena for ground atoms, with a per-predicate index.
#[derive(Debug, Default, Clone)]
pub struct AtomStore {
    atoms: Vec<GroundAtom>,
    by_atom: FxHashMap<GroundAtom, AtomId>,
    by_pred: Vec<Vec<AtomId>>,
}

impl AtomStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns the ground atom `pred(args…)`.
    pub fn intern(&mut self, pred: PredId, args: &[GTermId]) -> AtomId {
        let key = GroundAtom {
            pred,
            args: args.into(),
        };
        if let Some(&id) = self.by_atom.get(&key) {
            return id;
        }
        let id = AtomId(u32::try_from(self.atoms.len()).expect("atom store overflow"));
        self.atoms.push(key.clone());
        self.by_atom.insert(key, id);
        if self.by_pred.len() <= pred.index() {
            self.by_pred.resize_with(pred.index() + 1, Vec::new);
        }
        self.by_pred[pred.index()].push(id);
        id
    }

    /// Looks up a ground atom without interning.
    pub fn get_id(&self, pred: PredId, args: &[GTermId]) -> Option<AtomId> {
        // Cheap probe that avoids building a GroundAtom when absent is
        // common would need a borrowed key; the clone here is a small
        // boxed slice and this path is not hot.
        let key = GroundAtom {
            pred,
            args: args.into(),
        };
        self.by_atom.get(&key).copied()
    }

    /// The content of atom `id`.
    pub fn get(&self, id: AtomId) -> &GroundAtom {
        &self.atoms[id.index()]
    }

    /// All atoms of predicate `pred`, in interning order.
    pub fn of_pred(&self, pred: PredId) -> &[AtomId] {
        self.by_pred.get(pred.index()).map_or(&[], Vec::as_slice)
    }

    /// Number of distinct ground atoms materialised. This is the size of
    /// the *materialised* Herbrand base `B_P`.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Iterates over all atom ids in id order.
    pub fn ids(&self) -> impl Iterator<Item = AtomId> {
        (0..self.atoms.len() as u32).map(AtomId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::PredTable;
    use crate::symbol::SymbolTable;

    fn setup() -> (SymbolTable, PredTable, TermStore, AtomStore) {
        (
            SymbolTable::new(),
            PredTable::new(),
            TermStore::new(),
            AtomStore::new(),
        )
    }

    #[test]
    fn constants_are_shared() {
        let (mut syms, _, mut terms, _) = setup();
        let c = syms.intern("mimmo");
        let a = terms.constant(c);
        let b = terms.constant(c);
        assert_eq!(a, b);
        assert_eq!(terms.len(), 1);
    }

    #[test]
    fn ints_and_consts_are_distinct() {
        let (mut syms, _, mut terms, _) = setup();
        let c = syms.intern("x");
        let a = terms.constant(c);
        let b = terms.int(0);
        assert_ne!(a, b);
        assert_eq!(terms.as_int(b), Some(0));
        assert_eq!(terms.as_int(a), None);
    }

    #[test]
    fn compound_terms_hash_cons_structurally() {
        let (mut syms, _, mut terms, _) = setup();
        let f = syms.intern("f");
        let c = syms.intern("c");
        let cc = terms.constant(c);
        let t1 = terms.func(f, &[cc]);
        let t2 = terms.func(f, &[cc]);
        assert_eq!(t1, t2);
        let t3 = terms.func(f, &[t1]);
        assert_ne!(t1, t3);
        assert_eq!(terms.depth(cc), 0);
        assert_eq!(terms.depth(t1), 1);
        assert_eq!(terms.depth(t3), 2);
    }

    #[test]
    #[should_panic(expected = "0-ary")]
    fn zero_arity_func_panics() {
        let (mut syms, _, mut terms, _) = setup();
        let f = syms.intern("f");
        terms.func(f, &[]);
    }

    #[test]
    fn atoms_intern_and_index_by_pred() {
        let (mut syms, mut preds, mut terms, mut atoms) = setup();
        let bird = preds.intern(syms.intern("bird"), 1);
        let fly = preds.intern(syms.intern("fly"), 1);
        let penguin = terms.constant(syms.intern("penguin"));
        let pigeon = terms.constant(syms.intern("pigeon"));
        let a1 = atoms.intern(bird, &[penguin]);
        let a2 = atoms.intern(bird, &[pigeon]);
        let a3 = atoms.intern(fly, &[penguin]);
        let a1b = atoms.intern(bird, &[penguin]);
        assert_eq!(a1, a1b);
        assert_ne!(a1, a2);
        assert_ne!(a1, a3);
        assert_eq!(atoms.of_pred(bird), &[a1, a2]);
        assert_eq!(atoms.of_pred(fly), &[a3]);
        assert_eq!(atoms.get_id(bird, &[penguin]), Some(a1));
        assert_eq!(atoms.get(a3).pred, fly);
    }

    #[test]
    fn of_pred_for_unknown_pred_is_empty() {
        let (mut syms, mut preds, _, atoms) = setup();
        let p = preds.intern(syms.intern("p"), 0);
        assert!(atoms.of_pred(p).is_empty());
    }
}
