//! The [`World`]: single-ownership bundle of all interners, plus
//! human-readable rendering of every id type.

use crate::gterm::{AtomId, AtomStore, GTerm, GTermId, TermStore};
use crate::literal::{GLit, Literal, Sign};
use crate::pred::{PredId, PredTable};
use crate::rule::{Aexp, BodyItem, Cmp, Rule};
use crate::symbol::SymbolTable;
use crate::term::Term;

/// All interning state for one program/session.
///
/// Everything downstream (parser, grounder, semantics, KB layer) works
/// against one `World`, usually `&mut` while building and `&` while
/// solving. Ids from one `World` must not be mixed with another's.
#[derive(Debug, Default, Clone)]
pub struct World {
    /// String interner.
    pub syms: SymbolTable,
    /// Predicate interner.
    pub preds: PredTable,
    /// Ground-term arena.
    pub terms: TermStore,
    /// Ground-atom arena.
    pub atoms: AtomStore,
}

impl World {
    /// Creates an empty world.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a predicate by name and arity.
    pub fn pred(&mut self, name: &str, arity: u32) -> PredId {
        let s = self.syms.intern(name);
        self.preds.intern(s, arity)
    }

    /// Interns a constant ground term by name.
    pub fn constant(&mut self, name: &str) -> GTermId {
        let s = self.syms.intern(name);
        self.terms.constant(s)
    }

    /// Interns an integer ground term.
    pub fn int(&mut self, i: i64) -> GTermId {
        self.terms.int(i)
    }

    /// Interns a ground atom from a predicate name and ground args.
    pub fn ground_atom(&mut self, name: &str, args: &[GTermId]) -> AtomId {
        let p = self.pred(name, args.len() as u32);
        self.atoms.intern(p, args)
    }

    /// A non-ground variable term by name.
    pub fn var(&mut self, name: &str) -> Term {
        Term::Var(self.syms.intern(name))
    }

    // ---- rendering -------------------------------------------------

    /// Renders a ground term.
    pub fn term_str(&self, t: GTermId) -> String {
        match self.terms.get(t) {
            GTerm::Const(s) => self.syms.name(*s).to_string(),
            GTerm::Int(i) => i.to_string(),
            GTerm::Func(f, args) => {
                let inner: Vec<String> = args.iter().map(|&a| self.term_str(a)).collect();
                format!("{}({})", self.syms.name(*f), inner.join(","))
            }
        }
    }

    /// Renders a non-ground term.
    pub fn nterm_str(&self, t: &Term) -> String {
        match t {
            Term::Var(v) => self.syms.name(*v).to_string(),
            Term::Const(c) => self.syms.name(*c).to_string(),
            Term::Int(i) => i.to_string(),
            Term::App(f, args) => {
                let inner: Vec<String> = args.iter().map(|a| self.nterm_str(a)).collect();
                format!("{}({})", self.syms.name(*f), inner.join(","))
            }
        }
    }

    /// Renders a ground atom.
    pub fn atom_str(&self, a: AtomId) -> String {
        let ga = self.atoms.get(a);
        let name = self.syms.name(self.preds.info(ga.pred).name);
        if ga.args.is_empty() {
            name.to_string()
        } else {
            let inner: Vec<String> = ga.args.iter().map(|&t| self.term_str(t)).collect();
            format!("{}({})", name, inner.join(","))
        }
    }

    /// Renders a packed ground literal.
    pub fn glit_str(&self, l: GLit) -> String {
        match l.sign() {
            Sign::Pos => self.atom_str(l.atom()),
            Sign::Neg => format!("-{}", self.atom_str(l.atom())),
        }
    }

    /// Renders a non-ground literal.
    pub fn lit_str(&self, l: &Literal) -> String {
        let name = self.syms.name(self.preds.info(l.pred).name);
        let base = if l.args.is_empty() {
            name.to_string()
        } else {
            let inner: Vec<String> = l.args.iter().map(|t| self.nterm_str(t)).collect();
            format!("{}({})", name, inner.join(","))
        };
        match l.sign {
            Sign::Pos => base,
            Sign::Neg => format!("-{base}"),
        }
    }

    fn aexp_str(&self, e: &Aexp) -> String {
        match e {
            Aexp::Term(t) => self.nterm_str(t),
            Aexp::Add(l, r) => format!("({} + {})", self.aexp_str(l), self.aexp_str(r)),
            Aexp::Sub(l, r) => format!("({} - {})", self.aexp_str(l), self.aexp_str(r)),
            Aexp::Mul(l, r) => format!("({} * {})", self.aexp_str(l), self.aexp_str(r)),
            Aexp::Div(l, r) => format!("({} / {})", self.aexp_str(l), self.aexp_str(r)),
            Aexp::Mod(l, r) => format!("({} mod {})", self.aexp_str(l), self.aexp_str(r)),
            Aexp::Neg(x) => format!("-{}", self.aexp_str(x)),
        }
    }

    /// Renders a comparison.
    pub fn cmp_str(&self, c: &Cmp) -> String {
        format!(
            "{} {} {}",
            self.aexp_str(&c.lhs),
            c.op.symbol(),
            self.aexp_str(&c.rhs)
        )
    }

    /// Renders a rule in surface syntax (`head :- body.`).
    pub fn rule_str(&self, r: &Rule) -> String {
        let head = self.lit_str(&r.head);
        if r.body.is_empty() {
            return format!("{head}.");
        }
        let body: Vec<String> = r
            .body
            .iter()
            .map(|b| match b {
                BodyItem::Lit(l) => self.lit_str(l),
                BodyItem::Cmp(c) => self.cmp_str(c),
            })
            .collect();
        format!("{head} :- {}.", body.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_round_trip_shapes() {
        let mut w = World::new();
        let penguin = w.constant("penguin");
        let a = w.ground_atom("bird", &[penguin]);
        assert_eq!(w.atom_str(a), "bird(penguin)");
        assert_eq!(w.glit_str(GLit::pos(a)), "bird(penguin)");
        assert_eq!(w.glit_str(GLit::neg(a)), "-bird(penguin)");

        let zero = w.ground_atom("halt", &[]);
        assert_eq!(w.atom_str(zero), "halt");

        let f = w.syms.intern("s");
        let n0 = w.int(0);
        let s0 = w.terms.func(f, &[n0]);
        let nat = w.ground_atom("nat", &[s0]);
        assert_eq!(w.atom_str(nat), "nat(s(0))");
    }

    #[test]
    fn rule_rendering() {
        let mut w = World::new();
        let x = w.syms.intern("X");
        let bird = w.pred("bird", 1);
        let fly = w.pred("fly", 1);
        let r = Rule::new(
            Literal::pos(fly, vec![Term::Var(x)]),
            vec![BodyItem::Lit(Literal::pos(bird, vec![Term::Var(x)]))],
        );
        assert_eq!(w.rule_str(&r), "fly(X) :- bird(X).");
        let f = Rule::fact(Literal::neg(
            fly,
            vec![Term::Const(w.syms.intern("penguin"))],
        ));
        assert_eq!(w.rule_str(&f), "-fly(penguin).");
    }

    #[test]
    fn cmp_rendering() {
        let mut w = World::new();
        let x = w.syms.intern("X");
        let y = w.syms.intern("Y");
        let c = Cmp {
            op: crate::rule::CmpOp::Gt,
            lhs: Aexp::Term(Term::Var(x)),
            rhs: Aexp::Add(
                Box::new(Aexp::Term(Term::Var(y))),
                Box::new(Aexp::Term(Term::Int(2))),
            ),
        };
        assert_eq!(w.cmp_str(&c), "X > (Y + 2)");
    }
}
