//! Source positions and the program span table.
//!
//! The lexer stamps every token with a [`Pos`]; the parser threads those
//! positions onto rules and order edges via a [`SpanTable`] kept *beside*
//! the AST (on [`crate::OrderedProgram`]) rather than inside it, so that
//! rule equality, hashing, alpha-equivalence, and printed round-trips are
//! unaffected by where a rule happened to be written. Programs built
//! programmatically simply have an empty table; consumers (the
//! `olp_analyze` lint pass, error reporting) treat missing spans as
//! "location unknown".

use crate::fxhash::FxHashMap;
use std::fmt;

/// A source position (1-based line and column) for error reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Where the pieces of one rule start: the head literal and each body
/// item, in source order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleSpan {
    /// Start of the head literal (for a negated head, the `-`/`~`).
    pub head: Pos,
    /// Start of each body item (literal or comparison), aligned with
    /// `Rule::body`.
    pub body: Vec<Pos>,
}

impl RuleSpan {
    /// The span of body item `i`, if recorded.
    pub fn body_pos(&self, i: usize) -> Option<Pos> {
        self.body.get(i).copied()
    }
}

/// Source spans for a program, keyed by `(component index, rule index)`
/// for rules and by declaration order for `<` edges.
///
/// The table is *best effort*: entries exist only for syntax that came
/// through the parser. Rule removal must go through
/// [`crate::OrderedProgram::remove_rule`] so that the indices stay
/// aligned.
#[derive(Debug, Clone, Default)]
pub struct SpanTable {
    rules: FxHashMap<(u32, u32), RuleSpan>,
    edges: FxHashMap<u32, Pos>,
}

impl SpanTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the span of `components[comp].rules[rule]`.
    pub fn set_rule(&mut self, comp: usize, rule: usize, span: RuleSpan) {
        self.rules.insert((comp as u32, rule as u32), span);
    }

    /// The span of `components[comp].rules[rule]`, if recorded.
    pub fn rule(&self, comp: usize, rule: usize) -> Option<&RuleSpan> {
        self.rules.get(&(comp as u32, rule as u32))
    }

    /// Start of the rule (its head), if recorded.
    pub fn rule_pos(&self, comp: usize, rule: usize) -> Option<Pos> {
        self.rule(comp, rule).map(|s| s.head)
    }

    /// Records the span of declared edge number `edge`.
    pub fn set_edge(&mut self, edge: usize, pos: Pos) {
        self.edges.insert(edge as u32, pos);
    }

    /// The span of declared edge number `edge`, if recorded.
    pub fn edge_pos(&self, edge: usize) -> Option<Pos> {
        self.edges.get(&(edge as u32)).copied()
    }

    /// Keeps the table aligned after `components[comp].rules.remove(rule)`:
    /// drops the removed rule's entry and shifts later entries down.
    pub fn remove_rule(&mut self, comp: usize, rule: usize) {
        let comp = comp as u32;
        let rule = rule as u32;
        self.rules.remove(&(comp, rule));
        let shifted: Vec<((u32, u32), RuleSpan)> = self
            .rules
            .iter()
            .filter(|&(&(c, r), _)| c == comp && r > rule)
            .map(|(&k, v)| (k, v.clone()))
            .collect();
        for ((c, r), span) in shifted {
            self.rules.remove(&(c, r));
            self.rules.insert((c, r - 1), span);
        }
    }

    /// Keeps the table aligned after
    /// `components[comp].rules.insert(rule, …)`: shifts entries at or
    /// after `rule` up. The inserted rule itself gets no span (use
    /// [`SpanTable::set_rule`] if one is known).
    pub fn insert_rule(&mut self, comp: usize, rule: usize) {
        let comp = comp as u32;
        let rule = rule as u32;
        let mut shifted: Vec<((u32, u32), RuleSpan)> = self
            .rules
            .iter()
            .filter(|&(&(c, r), _)| c == comp && r >= rule)
            .map(|(&k, v)| (k, v.clone()))
            .collect();
        // Highest index first, so an insert never clobbers an entry
        // that still needs to move.
        shifted.sort_by_key(|&((_, r), _)| std::cmp::Reverse(r));
        for ((c, r), span) in shifted {
            self.rules.remove(&(c, r));
            self.rules.insert((c, r + 1), span);
        }
    }

    /// Whether any spans are recorded at all.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty() && self.edges.is_empty()
    }

    /// Iterates over all recorded rule spans as
    /// `((component index, rule index), span)`, in unspecified order.
    /// Serialisation (`olp-store`) sorts the pairs itself.
    pub fn iter_rules(&self) -> impl Iterator<Item = ((u32, u32), &RuleSpan)> {
        self.rules.iter().map(|(&k, v)| (k, v))
    }

    /// Iterates over all recorded edge spans as `(edge index, pos)`, in
    /// unspecified order.
    pub fn iter_edges(&self) -> impl Iterator<Item = (u32, Pos)> + '_ {
        self.edges.iter().map(|(&k, &v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(line: u32) -> RuleSpan {
        RuleSpan {
            head: Pos { line, col: 1 },
            body: vec![Pos { line, col: 10 }],
        }
    }

    #[test]
    fn pos_renders_line_colon_col() {
        assert_eq!(Pos { line: 3, col: 7 }.to_string(), "3:7");
    }

    #[test]
    fn set_get_roundtrip() {
        let mut t = SpanTable::new();
        assert!(t.is_empty());
        t.set_rule(0, 0, span(1));
        t.set_rule(0, 1, span(2));
        t.set_edge(0, Pos { line: 9, col: 1 });
        assert_eq!(t.rule_pos(0, 0), Some(Pos { line: 1, col: 1 }));
        assert_eq!(
            t.rule(0, 1).unwrap().body_pos(0),
            Some(Pos { line: 2, col: 10 })
        );
        assert_eq!(t.rule_pos(1, 0), None);
        assert_eq!(t.edge_pos(0), Some(Pos { line: 9, col: 1 }));
        assert_eq!(t.edge_pos(1), None);
        assert!(!t.is_empty());
    }

    #[test]
    fn remove_shifts_later_rules_down() {
        let mut t = SpanTable::new();
        for r in 0..4 {
            t.set_rule(0, r, span(r as u32 + 1));
        }
        t.set_rule(1, 2, span(50));
        t.remove_rule(0, 1);
        assert_eq!(t.rule_pos(0, 0), Some(Pos { line: 1, col: 1 }));
        assert_eq!(t.rule_pos(0, 1), Some(Pos { line: 3, col: 1 }));
        assert_eq!(t.rule_pos(0, 2), Some(Pos { line: 4, col: 1 }));
        assert_eq!(t.rule_pos(0, 3), None);
        // Other components untouched.
        assert_eq!(t.rule_pos(1, 2), Some(Pos { line: 50, col: 1 }));
    }

    #[test]
    fn insert_shifts_later_rules_up_and_inverts_remove() {
        let mut t = SpanTable::new();
        for r in 0..3 {
            t.set_rule(0, r, span(r as u32 + 1));
        }
        t.insert_rule(0, 1);
        assert_eq!(t.rule_pos(0, 0), Some(Pos { line: 1, col: 1 }));
        assert_eq!(t.rule_pos(0, 1), None, "inserted slot has no span");
        assert_eq!(t.rule_pos(0, 2), Some(Pos { line: 2, col: 1 }));
        assert_eq!(t.rule_pos(0, 3), Some(Pos { line: 3, col: 1 }));
        // Restoring the removed rule's span completes the round trip.
        t.set_rule(0, 1, span(2));
        t.remove_rule(0, 1);
        t.insert_rule(0, 1);
        t.set_rule(0, 1, span(2));
        assert_eq!(t.rule_pos(0, 1), Some(Pos { line: 2, col: 1 }));
        assert_eq!(t.rule_pos(0, 2), Some(Pos { line: 2, col: 1 }));
    }
}
