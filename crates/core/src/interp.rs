//! Interpretations.
//!
//! §2 of the paper: an *interpretation* is a **consistent** subset of
//! `B_P ∪ ¬B_P` — a 3-valued assignment where a ground atom is true
//! (the positive literal is in the set), false (the negative literal
//! is), or *undefined* (neither). [`Interpretation`] stores the two
//! polarities as dense bit sets over [`AtomId`]s and maintains
//! consistency by construction.

use crate::bitset::BitSet;
use crate::gterm::AtomId;
use crate::literal::{GLit, Sign};
use crate::world::World;

/// The truth value of an atom under an interpretation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Truth {
    /// The positive literal is in the interpretation.
    True,
    /// The negative literal is in the interpretation.
    False,
    /// Neither literal is in the interpretation.
    Undefined,
}

impl std::fmt::Display for Truth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Truth::True => "true",
            Truth::False => "false",
            Truth::Undefined => "undefined",
        })
    }
}

/// Error: attempted to insert a literal whose complement is present.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Inconsistency(pub GLit);

impl std::fmt::Display for Inconsistency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "inserting literal would make interpretation inconsistent"
        )
    }
}

impl std::error::Error for Inconsistency {}

/// A consistent 3-valued interpretation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Interpretation {
    pos: BitSet,
    neg: BitSet,
}

impl Interpretation {
    /// The empty interpretation (everything undefined).
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sizes for `n_atoms` atoms.
    pub fn with_capacity(n_atoms: usize) -> Self {
        Interpretation {
            pos: BitSet::with_capacity(n_atoms),
            neg: BitSet::with_capacity(n_atoms),
        }
    }

    /// Truth value of `atom`.
    #[inline]
    pub fn value(&self, atom: AtomId) -> Truth {
        if self.pos.contains(atom.index()) {
            Truth::True
        } else if self.neg.contains(atom.index()) {
            Truth::False
        } else {
            Truth::Undefined
        }
    }

    /// Whether literal `l` is **in** the interpretation (i.e. true).
    #[inline]
    pub fn holds(&self, l: GLit) -> bool {
        match l.sign() {
            Sign::Pos => self.pos.contains(l.atom().index()),
            Sign::Neg => self.neg.contains(l.atom().index()),
        }
    }

    /// Whether the atom of `l` is undefined.
    #[inline]
    pub fn undefined(&self, atom: AtomId) -> bool {
        self.value(atom) == Truth::Undefined
    }

    /// Inserts literal `l`. Fails if the complement is present.
    pub fn insert(&mut self, l: GLit) -> Result<bool, Inconsistency> {
        if self.holds(l.complement()) {
            return Err(Inconsistency(l));
        }
        Ok(match l.sign() {
            Sign::Pos => self.pos.insert(l.atom().index()),
            Sign::Neg => self.neg.insert(l.atom().index()),
        })
    }

    /// Removes literal `l`; returns whether it was present.
    pub fn remove(&mut self, l: GLit) -> bool {
        match l.sign() {
            Sign::Pos => self.pos.remove(l.atom().index()),
            Sign::Neg => self.neg.remove(l.atom().index()),
        }
    }

    /// Number of literals (defined atoms).
    pub fn len(&self) -> usize {
        self.pos.len() + self.neg.len()
    }

    /// Whether everything is undefined.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the interpretation is **total** over atoms `0..n_atoms`:
    /// no atom is undefined (Def. 5a: `M̄` is empty).
    pub fn is_total(&self, n_atoms: usize) -> bool {
        (0..n_atoms).all(|i| !self.undefined(AtomId(i as u32)))
    }

    /// Set inclusion as sets of literals (`self ⊆ other`).
    pub fn is_subset(&self, other: &Interpretation) -> bool {
        self.pos.is_subset(&other.pos) && self.neg.is_subset(&other.neg)
    }

    /// Proper inclusion.
    pub fn is_proper_subset(&self, other: &Interpretation) -> bool {
        self.is_subset(other) && self.len() < other.len()
    }

    /// Iterates over all literals in the interpretation, positive ones
    /// first.
    pub fn literals(&self) -> impl Iterator<Item = GLit> + '_ {
        self.pos
            .iter()
            .map(|i| GLit::pos(AtomId(i as u32)))
            .chain(self.neg.iter().map(|i| GLit::neg(AtomId(i as u32))))
    }

    /// Iterates over the undefined atoms among `0..n_atoms`.
    pub fn undefined_atoms(&self, n_atoms: usize) -> impl Iterator<Item = AtomId> + '_ {
        (0..n_atoms as u32)
            .map(AtomId)
            .filter(move |&a| self.undefined(a))
    }

    /// The positive part `I⁺` as atom ids.
    pub fn pos_atoms(&self) -> impl Iterator<Item = AtomId> + '_ {
        self.pos.iter().map(|i| AtomId(i as u32))
    }

    /// The negative part `I⁻` as atom ids.
    pub fn neg_atoms(&self) -> impl Iterator<Item = AtomId> + '_ {
        self.neg.iter().map(|i| AtomId(i as u32))
    }

    /// Builds an interpretation from literals; fails on inconsistency.
    pub fn from_literals(
        lits: impl IntoIterator<Item = GLit>,
    ) -> Result<Interpretation, Inconsistency> {
        let mut i = Interpretation::new();
        for l in lits {
            i.insert(l)?;
        }
        Ok(i)
    }

    /// Renders as `{lit, lit, …}` sorted alphabetically (stable for
    /// tests and experiment output).
    pub fn render(&self, world: &World) -> String {
        let mut parts: Vec<String> = self.literals().map(|l| world.glit_str(l)).collect();
        parts.sort();
        format!("{{{}}}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_all_undefined() {
        let i = Interpretation::new();
        assert_eq!(i.value(AtomId(0)), Truth::Undefined);
        assert!(i.is_empty());
        assert!(!i.is_total(1));
        assert!(i.is_total(0));
    }

    #[test]
    fn insert_and_value() {
        let mut i = Interpretation::new();
        let a = AtomId(0);
        let b = AtomId(1);
        assert!(i.insert(GLit::pos(a)).unwrap());
        assert!(i.insert(GLit::neg(b)).unwrap());
        assert!(!i.insert(GLit::pos(a)).unwrap()); // idempotent
        assert_eq!(i.value(a), Truth::True);
        assert_eq!(i.value(b), Truth::False);
        assert!(i.holds(GLit::pos(a)));
        assert!(!i.holds(GLit::neg(a)));
        assert!(i.is_total(2));
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn consistency_enforced() {
        let mut i = Interpretation::new();
        i.insert(GLit::pos(AtomId(3))).unwrap();
        assert_eq!(
            i.insert(GLit::neg(AtomId(3))),
            Err(Inconsistency(GLit::neg(AtomId(3))))
        );
        // Removing restores insertability.
        assert!(i.remove(GLit::pos(AtomId(3))));
        assert!(i.insert(GLit::neg(AtomId(3))).is_ok());
    }

    #[test]
    fn subset_ordering() {
        let a = Interpretation::from_literals([GLit::pos(AtomId(0))]).unwrap();
        let b =
            Interpretation::from_literals([GLit::pos(AtomId(0)), GLit::neg(AtomId(1))]).unwrap();
        assert!(a.is_subset(&b));
        assert!(a.is_proper_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_subset(&a));
        assert!(!a.is_proper_subset(&a));
        // Same atom, different sign: incomparable.
        let c = Interpretation::from_literals([GLit::neg(AtomId(0))]).unwrap();
        assert!(!a.is_subset(&c) && !c.is_subset(&a));
    }

    #[test]
    fn literal_iteration_and_undefined() {
        let i =
            Interpretation::from_literals([GLit::neg(AtomId(2)), GLit::pos(AtomId(0))]).unwrap();
        let lits: Vec<GLit> = i.literals().collect();
        assert_eq!(lits, vec![GLit::pos(AtomId(0)), GLit::neg(AtomId(2))]);
        let undef: Vec<AtomId> = i.undefined_atoms(4).collect();
        assert_eq!(undef, vec![AtomId(1), AtomId(3)]);
    }

    #[test]
    fn from_literals_detects_conflict() {
        assert!(
            Interpretation::from_literals([GLit::pos(AtomId(1)), GLit::neg(AtomId(1))]).is_err()
        );
    }
}
