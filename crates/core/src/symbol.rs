//! String interning.
//!
//! Every identifier in a program — constants, function symbols, predicate
//! names, variable names, component names — is interned once into a
//! [`SymbolTable`] and referred to by a [`Sym`] (`u32`). Interning makes
//! symbol equality a register compare and keeps every downstream struct
//! `Copy`-friendly.

use crate::fxhash::FxHashMap;
use std::fmt;

/// An interned string. Only meaningful relative to the [`SymbolTable`]
/// (in practice: the [`crate::World`]) that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

impl Sym {
    /// The raw index, for use as a dense-array key.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Bidirectional string ↔ [`Sym`] table.
///
/// Strings are stored once; lookups are by FxHash. The table never
/// forgets a symbol (programs are small relative to the data they
/// derive), which keeps ids stable for the lifetime of a [`crate::World`].
#[derive(Debug, Default, Clone)]
pub struct SymbolTable {
    names: Vec<Box<str>>,
    by_name: FxHashMap<Box<str>, Sym>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning the existing id if already present.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&s) = self.by_name.get(name) {
            return s;
        }
        let id = Sym(u32::try_from(self.names.len()).expect("symbol table overflow"));
        let boxed: Box<str> = name.into();
        self.names.push(boxed.clone());
        self.by_name.insert(boxed, id);
        id
    }

    /// Looks up a symbol without interning.
    pub fn get(&self, name: &str) -> Option<Sym> {
        self.by_name.get(name).copied()
    }

    /// The string for `sym`.
    ///
    /// # Panics
    /// Panics if `sym` was produced by a different table.
    pub fn name(&self, sym: Sym) -> &str {
        &self.names[sym.index()]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(Sym, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Sym(i as u32), n.as_ref()))
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("penguin");
        let b = t.intern("penguin");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_syms() {
        let mut t = SymbolTable::new();
        let a = t.intern("bird");
        let b = t.intern("fly");
        assert_ne!(a, b);
        assert_eq!(t.name(a), "bird");
        assert_eq!(t.name(b), "fly");
    }

    #[test]
    fn get_does_not_intern() {
        let mut t = SymbolTable::new();
        assert_eq!(t.get("x"), None);
        let s = t.intern("x");
        assert_eq!(t.get("x"), Some(s));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn iter_visits_in_id_order() {
        let mut t = SymbolTable::new();
        let syms: Vec<Sym> = ["a", "b", "c"].iter().map(|s| t.intern(s)).collect();
        let collected: Vec<(Sym, String)> = t.iter().map(|(s, n)| (s, n.to_string())).collect();
        assert_eq!(
            collected,
            vec![
                (syms[0], "a".to_string()),
                (syms[1], "b".to_string()),
                (syms[2], "c".to_string())
            ]
        );
    }

    #[test]
    fn empty_and_len() {
        let mut t = SymbolTable::new();
        assert!(t.is_empty());
        t.intern("q");
        assert!(!t.is_empty());
        assert_eq!(t.len(), 1);
    }
}
