//! Property tests for the core data structures: the bit set against a
//! reference model, interpretation consistency, partial-order laws for
//! the component order, literal packing, and hash-consing invariants.

use olp_core::{AtomId, BitSet, CompId, GLit, Interpretation, Order, Sign, Truth, World};
use proptest::prelude::*;
use std::collections::HashSet;

#[derive(Debug, Clone)]
enum SetOp {
    Insert(u16),
    Remove(u16),
    Clear,
}

fn op_strategy() -> impl Strategy<Value = SetOp> {
    prop_oneof![
        8 => any::<u16>().prop_map(|v| SetOp::Insert(v % 512)),
        4 => any::<u16>().prop_map(|v| SetOp::Remove(v % 512)),
        1 => Just(SetOp::Clear),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// BitSet behaves exactly like HashSet<usize> under arbitrary
    /// operation sequences, and equal contents compare equal regardless
    /// of history.
    #[test]
    fn bitset_matches_reference(ops in prop::collection::vec(op_strategy(), 0..60)) {
        let mut b = BitSet::new();
        let mut h: HashSet<usize> = HashSet::new();
        for op in &ops {
            match op {
                SetOp::Insert(v) => {
                    prop_assert_eq!(b.insert(*v as usize), h.insert(*v as usize));
                }
                SetOp::Remove(v) => {
                    prop_assert_eq!(b.remove(*v as usize), h.remove(&(*v as usize)));
                }
                SetOp::Clear => {
                    b.clear();
                    h.clear();
                }
            }
            prop_assert_eq!(b.len(), h.len());
        }
        let mut from_b: Vec<usize> = b.iter().collect();
        let mut from_h: Vec<usize> = h.iter().copied().collect();
        from_b.sort_unstable();
        from_h.sort_unstable();
        prop_assert_eq!(from_b, from_h);
        // History-independence of equality.
        let fresh: BitSet = h.iter().copied().collect();
        prop_assert_eq!(b, fresh);
    }

    /// Subset/union/difference agree with the reference.
    #[test]
    fn bitset_algebra(xs in prop::collection::hash_set(0usize..300, 0..40),
                      ys in prop::collection::hash_set(0usize..300, 0..40)) {
        let a: BitSet = xs.iter().copied().collect();
        let b: BitSet = ys.iter().copied().collect();
        prop_assert_eq!(a.is_subset(&b), xs.is_subset(&ys));
        prop_assert_eq!(a.intersects(&b), !xs.is_disjoint(&ys));
        let mut u = a.clone();
        u.union_with(&b);
        let ru: BitSet = xs.union(&ys).copied().collect();
        prop_assert_eq!(&u, &ru);
        let mut d = a.clone();
        d.difference_with(&b);
        let rd: BitSet = xs.difference(&ys).copied().collect();
        prop_assert_eq!(&d, &rd);
    }

    /// Interpretations never hold complementary literals; truth values
    /// track insertions/removals.
    #[test]
    fn interpretation_consistency(ops in prop::collection::vec(
        (0u32..64, any::<bool>(), any::<bool>()), 0..80)) {
        let mut i = Interpretation::new();
        for &(atom, neg, remove) in &ops {
            let l = GLit::new(if neg { Sign::Neg } else { Sign::Pos }, AtomId(atom));
            if remove {
                i.remove(l);
            } else {
                // Insertion either succeeds or reports the conflicting
                // complement; never both signs at once.
                let _ = i.insert(l);
            }
            match i.value(AtomId(atom)) {
                Truth::True => prop_assert!(i.holds(GLit::pos(AtomId(atom)))
                    && !i.holds(GLit::neg(AtomId(atom)))),
                Truth::False => prop_assert!(!i.holds(GLit::pos(AtomId(atom)))
                    && i.holds(GLit::neg(AtomId(atom)))),
                Truth::Undefined => prop_assert!(!i.holds(GLit::pos(AtomId(atom)))
                    && !i.holds(GLit::neg(AtomId(atom)))),
            }
        }
        prop_assert_eq!(i.len(), i.literals().count());
    }

    /// GLit packing is a bijection on (sign, atom).
    #[test]
    fn glit_roundtrip(atom in 0u32..1_000_000, neg in any::<bool>()) {
        let sign = if neg { Sign::Neg } else { Sign::Pos };
        let l = GLit::new(sign, AtomId(atom));
        prop_assert_eq!(l.atom(), AtomId(atom));
        prop_assert_eq!(l.sign(), sign);
        prop_assert_eq!(l.complement().complement(), l);
        prop_assert_eq!(GLit::from_code(l.code()), l);
    }

    /// The component order closure is a partial order (reflexive,
    /// transitive, antisymmetric) for every acyclic edge set, and
    /// can_overrule/can_defeat partition correctly.
    #[test]
    fn order_laws(n in 1usize..8, raw in prop::collection::vec((0usize..8, 0usize..8), 0..12)) {
        let edges: Vec<(CompId, CompId)> = raw
            .into_iter()
            .filter(|&(a, b)| a < b && b < n)
            .map(|(a, b)| (CompId(a as u32), CompId(b as u32)))
            .collect();
        let order = Order::from_edges(n, &edges).expect("a<b edges are acyclic");
        for a in 0..n as u32 {
            prop_assert!(order.leq(CompId(a), CompId(a)), "reflexive");
            for b in 0..n as u32 {
                for c in 0..n as u32 {
                    if order.leq(CompId(a), CompId(b)) && order.leq(CompId(b), CompId(c)) {
                        prop_assert!(order.leq(CompId(a), CompId(c)), "transitive");
                    }
                }
                if a != b {
                    prop_assert!(
                        !(order.leq(CompId(a), CompId(b)) && order.leq(CompId(b), CompId(a))),
                        "antisymmetric"
                    );
                    // Exactly one of: a<b, b<a, incomparable.
                    let lt = order.lt(CompId(a), CompId(b));
                    let gt = order.lt(CompId(b), CompId(a));
                    let inc = order.incomparable(CompId(a), CompId(b));
                    prop_assert_eq!(usize::from(lt) + usize::from(gt) + usize::from(inc), 1);
                    // Attack classes are disjoint.
                    prop_assert!(
                        !(order.can_overrule(CompId(a), CompId(b))
                            && order.can_defeat(CompId(a), CompId(b)))
                    );
                }
            }
        }
    }

    /// Hash-consing: interning the same ground structure twice yields
    /// the same id; distinct structures yield distinct ids.
    #[test]
    fn hash_consing(names in prop::collection::vec("[a-z]{1,6}", 1..10)) {
        let mut w = World::new();
        let ids: Vec<_> = names.iter().map(|n| w.constant(n)).collect();
        let again: Vec<_> = names.iter().map(|n| w.constant(n)).collect();
        prop_assert_eq!(&ids, &again);
        for (i, a) in names.iter().enumerate() {
            for (j, b) in names.iter().enumerate() {
                prop_assert_eq!(ids[i] == ids[j], a == b);
            }
        }
        // Atoms too.
        let atoms: Vec<_> = ids.iter().map(|&t| w.ground_atom("p", &[t])).collect();
        let atoms2: Vec<_> = ids.iter().map(|&t| w.ground_atom("p", &[t])).collect();
        prop_assert_eq!(atoms, atoms2);
    }
}
