//! Structural invariants of ground programs, property-tested over the
//! exhaustive grounder on random inputs built locally (the richer
//! generators live in `olp-workload`, which depends on this crate — so
//! these tests build their own small random programs).

use olp_core::{BodyItem, CompId, Literal, OrderedProgram, Rule, Sign, Term, World};
use olp_ground::{ground_exhaustive, GroundConfig};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct MiniRule {
    comp: usize,
    head: (usize, bool),
    body: Vec<(usize, bool)>,
}

fn rules_strategy() -> impl Strategy<Value = Vec<MiniRule>> {
    prop::collection::vec(
        (
            0..3usize,
            (0..5usize, any::<bool>()),
            prop::collection::vec((0..5usize, any::<bool>()), 0..3),
        )
            .prop_map(|(comp, head, body)| MiniRule { comp, head, body }),
        0..12,
    )
}

fn build(world: &mut World, rules: &[MiniRule]) -> OrderedProgram {
    let mut prog = OrderedProgram::new();
    for i in 0..3 {
        let s = world.syms.intern(&format!("c{i}"));
        prog.add_component(s);
    }
    // Fixed acyclic order: c0 < c1 < c2.
    prog.add_edge(CompId(0), CompId(1));
    prog.add_edge(CompId(1), CompId(2));
    let lit = |world: &mut World, (p, neg): (usize, bool)| {
        let pred = world.pred(&format!("p{p}"), 0);
        Literal {
            sign: if neg { Sign::Neg } else { Sign::Pos },
            pred,
            args: vec![],
        }
    };
    for r in rules {
        let head = lit(world, r.head);
        let body = r
            .body
            .iter()
            .map(|&b| BodyItem::Lit(lit(world, b)))
            .collect();
        prog.add_rule(CompId(r.comp as u32), Rule::new(head, body));
    }
    // One non-propositional rule exercising terms.
    let x = Term::Var(world.syms.intern("X"));
    let qp = world.pred("q", 1);
    let rp = world.pred("r", 1);
    let a = Term::Const(world.syms.intern("a"));
    prog.add_rule(CompId(0), Rule::fact(Literal::pos(qp, vec![a])));
    prog.add_rule(
        CompId(0),
        Rule::new(
            Literal::pos(rp, vec![x.clone()]),
            vec![BodyItem::Lit(Literal::pos(qp, vec![x]))],
        ),
    );
    prog
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ground_program_invariants(rules in rules_strategy()) {
        let mut w = World::new();
        let prog = build(&mut w, &rules);
        let g = ground_exhaustive(&mut w, &prog, &GroundConfig::default()).unwrap();

        // 1. No duplicate (comp, head, body) instances.
        let mut seen = std::collections::HashSet::new();
        for r in &g.rules {
            prop_assert!(
                seen.insert((r.comp, r.head, r.body.clone())),
                "duplicate ground instance"
            );
        }
        // 2. Bodies are sorted and deduplicated.
        for r in &g.rules {
            let mut sorted = r.body.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(&*r.body, &sorted[..]);
        }
        // 3. Every view contains exactly the rules of its up-set.
        let order = prog.order().unwrap();
        for c in 0..3u32 {
            let view = g.view(CompId(c));
            for &ri in view {
                prop_assert!(order.in_view(CompId(c), g.rules[ri as usize].comp));
            }
            let expect = g
                .rules
                .iter()
                .filter(|r| order.in_view(CompId(c), r.comp))
                .count();
            prop_assert_eq!(view.len(), expect);
        }
        // 4. Atom ids referenced by rules are within n_atoms.
        for r in &g.rules {
            prop_assert!((r.head.atom().index()) < g.n_atoms);
            for b in r.body.iter() {
                prop_assert!((b.atom().index()) < g.n_atoms);
            }
        }
    }
}
