//! Flat, stratum-sorted arena representation of a component view.
//!
//! The interpretive evaluators walk a [`GroundProgram`] through
//! per-view hash maps (`by_body: FxHashMap<GLit, Vec<LocalIdx>>` and
//! friends): every derived literal pays a hash + probe to find the
//! rules watching it. A [`FlatView`] compiles the same view once into
//! dense contiguous arenas so the semi-naive inner loop is pure index
//! arithmetic:
//!
//! * rules live in **one** flat order, sorted by `(dependency level,
//!   SCC)` of their head atom — every stratum is a contiguous rule
//!   range, every level a contiguous stratum range, and stratum
//!   membership tests collapse to a range check;
//! * rule bodies, watch lists and attack lists are CSR
//!   (offsets + payload) over `u32` ids;
//! * watch lists are indexed by [`GLit::code`] — literals over atoms
//!   `0..n` occupy codes `0..2n`, so "who watches this literal?" is an
//!   array load, and truth state is a [`olp_core::BitSet`] indexed by
//!   the same dense code space (one bit per signed atom);
//! * per-stratum dependency edges (`stratum_preds`) and statistics-based
//!   weights feed the morsel partitioner of the parallel fixpoint.
//!
//! The attack structure (overrulers / defeaters per Definition 2) is
//! recomputed here from head-atom buckets plus [`olp_core::Order`]; the
//! semantics crate differentially tests it against the interpretive
//! `View`'s hash-map construction.

use crate::program::{GroundProgram, GroundRule};
use olp_core::{tarjan_scc_csr, AtomId, CompId, GLit, PredId, Sign, World};

/// Index of a rule within a [`FlatView`] (position in the flat,
/// stratum-sorted rule order — **not** a `GroundProgram` index; see
/// [`FlatView::global_index`]).
pub type FlatIdx = u32;

/// Result of [`FlatView::apply_delta`].
// A `FlatPatch` is destructured immediately at the lone call site, so
// the variant size gap never lives anywhere.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum FlatPatch {
    /// The delta was stratum-local: the spliced view, sharing no
    /// allocation with the original (the original stays valid for
    /// readers of the previous epoch).
    Patched(FlatView),
    /// The change alters the SCC condensation — or introduces a
    /// dependency the surviving stratum order cannot host — and the
    /// caller must rebuild with [`FlatView::from_rules`].
    Rebuild,
}

/// A contiguous run of whole strata scheduled as one unit of parallel
/// work. Produced by [`FlatView::morsels`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Morsel {
    /// Flat rule range `[rule_lo, rule_hi)`.
    pub rule_lo: u32,
    /// End of the flat rule range (exclusive).
    pub rule_hi: u32,
    /// Stratum index range `[stratum_lo, stratum_hi)`.
    pub stratum_lo: u32,
    /// End of the stratum range (exclusive).
    pub stratum_hi: u32,
    /// The dependency level all contained strata share.
    pub level: u32,
}

/// A component view compiled into dense contiguous arenas.
#[derive(Debug, Clone)]
pub struct FlatView {
    /// The component whose view this is.
    pub comp: CompId,
    /// Atom universe size (truth bitsets span codes `0..2 * n_atoms`).
    pub n_atoms: usize,
    /// Head literal per flat rule.
    heads: Vec<GLit>,
    /// Component per flat rule (`C(r)`, for diagnostics).
    comps: Vec<CompId>,
    /// CSR offsets into `body` (length `n_rules + 1`).
    body_off: Vec<u32>,
    /// Concatenated rule bodies.
    body: Vec<GLit>,
    /// CSR offsets into `watch`, indexed by literal code (length
    /// `2 * n_atoms + 1`).
    watch_off: Vec<u32>,
    /// Flat rule indices watching each literal code (a rule appears
    /// once per distinct body literal).
    watch: Vec<u32>,
    /// CSR: potential overrulers per rule (flat indices).
    over_off: Vec<u32>,
    over: Vec<u32>,
    /// CSR: potential defeaters per rule (flat indices).
    defeat_off: Vec<u32>,
    defeat: Vec<u32>,
    /// CSR: overruling victims per rule (transposed `over`).
    vover_off: Vec<u32>,
    vover: Vec<u32>,
    /// CSR: defeating victims per rule (transposed `defeat`).
    vdefeat_off: Vec<u32>,
    vdefeat: Vec<u32>,
    /// Stratum boundaries in the flat rule order (length
    /// `n_strata + 1`): stratum `s` is rules
    /// `stratum_off[s]..stratum_off[s + 1]`.
    stratum_off: Vec<u32>,
    /// Level boundaries in stratum index space (length `n_levels + 1`):
    /// level `l` spans strata `level_off[l]..level_off[l + 1]`.
    level_off: Vec<u32>,
    /// CSR: distinct predecessor strata per stratum (strata owning
    /// out-of-stratum body atoms of the stratum's rules).
    pred_off: Vec<u32>,
    preds: Vec<u32>,
    /// Flat index → global rule index into `GroundProgram::rules`.
    global: Vec<u32>,
}

impl FlatView {
    /// Compiles the flat view of component `comp`.
    pub fn new(gp: &GroundProgram, comp: CompId) -> Self {
        Self::from_rules(gp, comp, gp.view(comp))
    }

    /// Compiles a flat view over an explicit rule subset (global
    /// indices into `gp.rules`). Same closure requirement as the
    /// interpretive view: a rule outside the subset neither fires nor
    /// attacks.
    pub fn from_rules(gp: &GroundProgram, comp: CompId, rules: &[u32]) -> Self {
        let n = rules.len();
        let n_atoms = gp.n_atoms;

        // --- Stratification: SCCs of the head→body atom graph, built
        // as CSR in two counting passes (no per-atom allocation, no
        // sort — Tarjan tolerates duplicate edges).
        let mut adj_off = vec![0u32; n_atoms + 1];
        for &ri in rules {
            let r = &gp.rules[ri as usize];
            adj_off[r.head.atom().index() + 1] += r.body.len() as u32;
        }
        for v in 0..n_atoms {
            adj_off[v + 1] += adj_off[v];
        }
        let mut adj_edges = vec![0u32; adj_off[n_atoms] as usize];
        let mut cursor = adj_off.clone();
        for &ri in rules {
            let r = &gp.rules[ri as usize];
            let h = r.head.atom().index();
            for &b in &r.body {
                adj_edges[cursor[h] as usize] = b.atom().index() as u32;
                cursor[h] += 1;
            }
        }
        let (scc_of, n_sccs) = tarjan_scc_csr(&adj_off, &adj_edges);

        // Dependency level per SCC. Tarjan numbers SCCs
        // reverse-topologically (edges go to smaller ids), so one
        // ascending pass over SCC ids sees every dependency's level
        // final before it is read. The cross-SCC edge list is grouped
        // by source via a counting sort (duplicates are harmless to a
        // max-fold).
        let mut se_off = vec![0u32; n_sccs + 2];
        for &ri in rules {
            let r = &gp.rules[ri as usize];
            let s = scc_of[r.head.atom().index()];
            for &b in &r.body {
                let t = scc_of[b.atom().index()];
                if t != s {
                    debug_assert!(t < s, "Tarjan ids must be reverse-topological");
                    se_off[s as usize + 1] += 1;
                }
            }
        }
        for s in 0..n_sccs.max(1) {
            se_off[s + 1] += se_off[s];
        }
        let mut se_edges = vec![0u32; se_off[n_sccs.max(1)] as usize];
        let mut se_cur = se_off.clone();
        for &ri in rules {
            let r = &gp.rules[ri as usize];
            let s = scc_of[r.head.atom().index()];
            for &b in &r.body {
                let t = scc_of[b.atom().index()];
                if t != s {
                    se_edges[se_cur[s as usize] as usize] = t;
                    se_cur[s as usize] += 1;
                }
            }
        }
        let mut scc_level = vec![0u32; n_sccs.max(1)];
        for s in 0..n_sccs {
            let mut lv = 0u32;
            for &t in &se_edges[se_off[s] as usize..se_off[s + 1] as usize] {
                lv = lv.max(scc_level[t as usize] + 1);
            }
            scc_level[s] = lv;
        }

        // --- Flat rule order: (level, SCC, global index). ------------
        // (level, SCC) sorting is topological — any inter-stratum body
        // dependency crosses to a strictly lower level — and makes both
        // strata and levels contiguous rule ranges. Instead of a
        // comparison sort over rules, rank the (few) SCCs by
        // (level, id) and counting-sort the rules by rank; iterating
        // `rules` in ascending global order makes the counting sort's
        // stability reproduce the global-index tie-break.
        let mut scc_rank = vec![0u32; n_sccs.max(1)];
        {
            let mut by_level: Vec<u32> = (0..n_sccs as u32).collect();
            by_level.sort_unstable_by_key(|&s| (scc_level[s as usize], s));
            for (rank, &s) in by_level.iter().enumerate() {
                scc_rank[s as usize] = rank as u32;
            }
        }
        let rules_asc: std::borrow::Cow<'_, [u32]> = if rules.windows(2).all(|w| w[0] <= w[1]) {
            std::borrow::Cow::Borrowed(rules)
        } else {
            let mut v = rules.to_vec();
            v.sort_unstable();
            std::borrow::Cow::Owned(v)
        };
        let mut rank_cnt = vec![0u32; n_sccs + 2];
        for &ri in rules_asc.iter() {
            let s = scc_of[gp.rules[ri as usize].head.atom().index()];
            rank_cnt[scc_rank[s as usize] as usize + 1] += 1;
        }
        for r in 0..n_sccs.max(1) {
            rank_cnt[r + 1] += rank_cnt[r];
        }
        let mut order_ri = vec![0u32; n];
        let mut rank_cur = rank_cnt;
        for &ri in rules_asc.iter() {
            let s = scc_of[gp.rules[ri as usize].head.atom().index()];
            let r = scc_rank[s as usize] as usize;
            order_ri[rank_cur[r] as usize] = ri;
            rank_cur[r] += 1;
        }

        let mut heads = Vec::with_capacity(n);
        let mut comps = Vec::with_capacity(n);
        let mut global = Vec::with_capacity(n);
        let mut body_off = Vec::with_capacity(n + 1);
        let mut body = Vec::new();
        let mut rule_scc = Vec::with_capacity(n);
        body_off.push(0u32);
        for &ri in &order_ri {
            let r = &gp.rules[ri as usize];
            heads.push(r.head);
            comps.push(r.comp);
            global.push(ri);
            rule_scc.push(scc_of[r.head.atom().index()]);
            body.extend_from_slice(&r.body);
            body_off.push(body.len() as u32);
        }

        // Stratum and level boundaries over the sorted order.
        let mut stratum_off: Vec<u32> = vec![0];
        let mut stratum_scc: Vec<u32> = Vec::new();
        let mut level_off: Vec<u32> = vec![0];
        let mut stratum_level: Vec<u32> = Vec::new();
        for f in 0..n {
            let s = rule_scc[f];
            if f == 0 || s != rule_scc[f - 1] {
                if f != 0 {
                    stratum_off.push(f as u32);
                }
                let lv = scc_level[s as usize];
                if stratum_level.last() != Some(&lv) {
                    if !stratum_level.is_empty() {
                        level_off.push(stratum_scc.len() as u32);
                    }
                    stratum_level.push(lv);
                }
                stratum_scc.push(s);
            }
        }
        stratum_off.push(n as u32);
        level_off.push(stratum_scc.len() as u32);
        if n == 0 {
            stratum_off = vec![0, 0];
            level_off = vec![0, 0];
            stratum_scc = vec![0];
        }

        // SCC id → stratum index (only SCCs that own rules).
        let n_strata = stratum_scc.len();
        let mut stratum_of_scc = vec![u32::MAX; n_sccs.max(1)];
        for (si, &s) in stratum_scc.iter().enumerate() {
            stratum_of_scc[s as usize] = si as u32;
        }

        // --- Watch lists: CSR over literal codes (two passes). -------
        let codes = 2 * n_atoms;
        let mut watch_off = vec![0u32; codes + 1];
        for &b in &body {
            watch_off[b.code() + 1] += 1;
        }
        for c in 0..codes {
            watch_off[c + 1] += watch_off[c];
        }
        let mut watch = vec![0u32; body.len()];
        let mut cursor = watch_off.clone();
        for f in 0..n {
            for &b in &body[body_off[f] as usize..body_off[f + 1] as usize] {
                let c = b.code();
                watch[cursor[c] as usize] = f as u32;
                cursor[c] += 1;
            }
        }

        // --- Attack lists: head buckets + Order tests (two passes). --
        // Rules bucketed by head literal code; attackers of rule `r`
        // are the bucket of `H(r).complement()` filtered through the
        // component order. Victims are the transpose.
        let mut head_off = vec![0u32; codes + 1];
        for &h in &heads {
            head_off[h.code() + 1] += 1;
        }
        for c in 0..codes {
            head_off[c + 1] += head_off[c];
        }
        let mut head_bucket = vec![0u32; n];
        let mut cursor = head_off.clone();
        for (f, &h) in heads.iter().enumerate() {
            let c = h.code();
            head_bucket[cursor[c] as usize] = f as u32;
            cursor[c] += 1;
        }

        let mut over_off = vec![0u32; n + 1];
        let mut defeat_off = vec![0u32; n + 1];
        let mut vover_off = vec![0u32; n + 1];
        let mut vdefeat_off = vec![0u32; n + 1];
        let attackers = |f: usize| {
            let c = heads[f].complement().code();
            &head_bucket[head_off[c] as usize..head_off[c + 1] as usize]
        };
        for f in 0..n {
            for &a in attackers(f) {
                if gp.order.can_overrule(comps[a as usize], comps[f]) {
                    over_off[f + 1] += 1;
                    vover_off[a as usize + 1] += 1;
                }
                if gp.order.can_defeat(comps[a as usize], comps[f]) {
                    defeat_off[f + 1] += 1;
                    vdefeat_off[a as usize + 1] += 1;
                }
            }
        }
        for f in 0..n {
            over_off[f + 1] += over_off[f];
            defeat_off[f + 1] += defeat_off[f];
            vover_off[f + 1] += vover_off[f];
            vdefeat_off[f + 1] += vdefeat_off[f];
        }
        let mut over = vec![0u32; over_off[n] as usize];
        let mut defeat = vec![0u32; defeat_off[n] as usize];
        let mut vover = vec![0u32; vover_off[n] as usize];
        let mut vdefeat = vec![0u32; vdefeat_off[n] as usize];
        let mut co = over_off.clone();
        let mut cd = defeat_off.clone();
        let mut cvo = vover_off.clone();
        let mut cvd = vdefeat_off.clone();
        for f in 0..n {
            for &a in attackers(f) {
                if gp.order.can_overrule(comps[a as usize], comps[f]) {
                    over[co[f] as usize] = a;
                    co[f] += 1;
                    vover[cvo[a as usize] as usize] = f as u32;
                    cvo[a as usize] += 1;
                }
                if gp.order.can_defeat(comps[a as usize], comps[f]) {
                    defeat[cd[f] as usize] = a;
                    cd[f] += 1;
                    vdefeat[cvd[a as usize] as usize] = f as u32;
                    cvd[a as usize] += 1;
                }
            }
        }

        // --- Per-stratum dependency edges (for the morsel graph). ----
        let mut pred_off = vec![0u32; n_strata + 1];
        let mut preds: Vec<u32> = Vec::new();
        let mut scratch: Vec<u32> = Vec::new();
        for si in 0..n_strata {
            scratch.clear();
            let (lo, hi) = (stratum_off[si] as usize, stratum_off[si + 1] as usize);
            for f in lo..hi {
                let s = rule_scc[f];
                for &b in &body[body_off[f] as usize..body_off[f + 1] as usize] {
                    let t = scc_of[b.atom().index()];
                    if t != s {
                        let ti = stratum_of_scc[t as usize];
                        // Atoms with no defining rules never become
                        // true; they impose no scheduling dependency.
                        if ti != u32::MAX {
                            scratch.push(ti);
                        }
                    }
                }
            }
            scratch.sort_unstable();
            scratch.dedup();
            preds.extend_from_slice(&scratch);
            pred_off[si + 1] = preds.len() as u32;
        }

        FlatView {
            comp,
            n_atoms,
            heads,
            comps,
            body_off,
            body,
            watch_off,
            watch,
            over_off,
            over,
            defeat_off,
            defeat,
            vover_off,
            vover,
            vdefeat_off,
            vdefeat,
            stratum_off,
            level_off,
            pred_off,
            preds,
            global,
        }
    }

    /// Flat indices of the given rules, matched by content — `(head,
    /// body, comp)` is unique within a view because [`GroundProgram`]
    /// deduplicates instances. One pass over the arena; `None` if any
    /// rule is absent. The removal half of [`FlatView::apply_delta`]
    /// is addressed this way because a patched view's
    /// [`FlatView::global_index`] entries may be stale (they refer to
    /// the program the view was last *built* from, not the one it was
    /// patched to match).
    pub fn locate(&self, rules: &[&GroundRule]) -> Option<Vec<u32>> {
        let mut out = vec![u32::MAX; rules.len()];
        let mut missing = rules.len();
        if missing == 0 {
            return Some(out);
        }
        for f in 0..self.len() {
            for (k, r) in rules.iter().enumerate() {
                if out[k] == u32::MAX
                    && self.heads[f] == r.head
                    && self.comps[f] == r.comp
                    && self.body(f as u32) == &r.body[..]
                {
                    out[k] = f as u32;
                    missing -= 1;
                    break; // a flat rule matches at most one target
                }
            }
            if missing == 0 {
                return Some(out);
            }
        }
        None
    }

    /// Splices a mutation delta into the arenas. `gp` is the ground
    /// program *after* the mutation, `added` are indices into
    /// `gp.rules` of rules this view gains, and `removed` are flat
    /// indices (into `self`) of rules it loses (see
    /// [`FlatView::locate`]).
    ///
    /// Returns [`FlatPatch::Patched`] when the delta is
    /// **stratum-local**: every added rule either joins the surviving
    /// stratum of its head atom without bending the topological order
    /// (all its defined body atoms live in strata `<=` it), or defines
    /// only fresh head atoms, appended as new *tail* strata
    /// (stratified among themselves by a Tarjan pass over the tail
    /// alone, sharing one new dependency level). Removals are always
    /// stratum-local: the surviving strata keep their slots, possibly
    /// left empty — evaluation skips empty ranges. Otherwise — a back
    /// edge into an earlier stratum, a surviving rule watching a
    /// freshly defined atom, or a change to the SCC condensation —
    /// the honest answer is [`FlatPatch::Rebuild`].
    ///
    /// A patched view evaluates identically to a
    /// [`FlatView::from_rules`] rebuild: its stratum order is
    /// topological (body dependencies never point forward), rules
    /// sharing a head atom share a stratum (the worklist's attacker
    /// bookkeeping relies on this), and watch/attack arenas are
    /// recomputed from the patched rule set. It may be *coarser* —
    /// removals can leave mergeable strata apart, and spliced rules
    /// may add same-level cross-stratum edges — which the morsel
    /// scheduler tolerates because it keys on [`FlatView::stratum_preds`],
    /// not on levels. Only [`FlatView::global_index`] goes stale.
    pub fn apply_delta(&self, gp: &GroundProgram, added: &[u32], removed: &[u32]) -> FlatPatch {
        let n_old = self.len();
        if n_old == 0 {
            // The empty view's synthetic empty stratum has nothing to
            // splice around; a rebuild costs the same.
            return FlatPatch::Rebuild;
        }
        let n_atoms = gp.n_atoms;
        if n_atoms < self.n_atoms {
            return FlatPatch::Rebuild; // not a successor program
        }

        // --- Removal mask over flat indices. ---------------------
        let mut dead = vec![false; n_old];
        for &f in removed {
            if f as usize >= n_old || dead[f as usize] {
                return FlatPatch::Rebuild; // malformed request
            }
            dead[f as usize] = true;
        }

        // --- Stratum owning each still-defined atom. -------------
        let n_strata_old = self.n_strata();
        let mut stratum_of_atom = vec![u32::MAX; n_atoms];
        for s in 0..n_strata_old {
            let (lo, hi) = self.stratum(s);
            for f in lo..hi {
                if !dead[f as usize] {
                    stratum_of_atom[self.heads[f as usize].atom().index()] = s as u32;
                }
            }
        }

        // --- Classify added rules. Head atom still owned by a
        // surviving stratum → splice there (all rules sharing a head
        // atom must share a stratum). Head atom unowned → a fresh
        // tail stratum appended after everything. ------------------
        let mut tail_slot = vec![u32::MAX; n_atoms];
        let mut tail_atoms: Vec<u32> = Vec::new();
        for &ri in added {
            let Some(r) = gp.rules.get(ri as usize) else {
                return FlatPatch::Rebuild; // malformed request
            };
            let h = r.head.atom().index();
            if stratum_of_atom[h] == u32::MAX && tail_slot[h] == u32::MAX {
                tail_slot[h] = tail_atoms.len() as u32;
                tail_atoms.push(h as u32);
            }
        }
        // A surviving rule watching a freshly defined atom would have
        // to run after the tail; the surviving order cannot host that.
        for &a in &tail_atoms {
            if (a as usize) < self.n_atoms {
                let atom = AtomId(a);
                for l in [GLit::pos(atom), GLit::neg(atom)] {
                    if self.watchers(l).iter().any(|&w| !dead[w as usize]) {
                        return FlatPatch::Rebuild;
                    }
                }
            }
        }
        let mut into_stratum: Vec<Vec<u32>> = vec![Vec::new(); n_strata_old];
        let mut tail_rules: Vec<Vec<u32>> = vec![Vec::new(); tail_atoms.len()];
        let mut tail_edges: Vec<(u32, u32)> = Vec::new();
        for &ri in added {
            let r = &gp.rules[ri as usize];
            let h = r.head.atom().index();
            let hs = stratum_of_atom[h];
            if hs == u32::MAX {
                let slot = tail_slot[h];
                for &b in &r.body {
                    let ba = b.atom().index();
                    if tail_slot[ba] != u32::MAX && ba != h {
                        tail_edges.push((slot, tail_slot[ba]));
                    }
                }
                tail_rules[slot as usize].push(ri);
            } else {
                for &b in &r.body {
                    let ba = b.atom().index();
                    if tail_slot[ba] != u32::MAX {
                        return FlatPatch::Rebuild; // depends on a later stratum
                    }
                    let bs = stratum_of_atom[ba];
                    if bs != u32::MAX && bs > hs {
                        return FlatPatch::Rebuild; // back edge: condensation changed
                    }
                    // bs == MAX: the atom has no defining rule — it
                    // never derives, no ordering constraint.
                }
                into_stratum[hs as usize].push(ri);
            }
        }

        // --- Stratify the tail among itself: a Tarjan pass over the
        // (tiny) fresh-atom graph only. Ascending ids are
        // reverse-topological — dependencies first — exactly the
        // order the tail strata are appended in. -------------------
        let n_tail = tail_atoms.len();
        let (tail_scc_of, n_tail_sccs) = if n_tail == 0 {
            (Vec::new(), 0)
        } else {
            let mut off = vec![0u32; n_tail + 1];
            for &(h, _) in &tail_edges {
                off[h as usize + 1] += 1;
            }
            for v in 0..n_tail {
                off[v + 1] += off[v];
            }
            let mut edges = vec![0u32; tail_edges.len()];
            let mut cur = off.clone();
            for &(h, b) in &tail_edges {
                edges[cur[h as usize] as usize] = b;
                cur[h as usize] += 1;
            }
            tarjan_scc_csr(&off, &edges)
        };
        let mut tail_strata: Vec<Vec<u32>> = vec![Vec::new(); n_tail_sccs];
        for (slot, rules) in tail_rules.iter().enumerate() {
            tail_strata[tail_scc_of[slot] as usize].extend_from_slice(rules);
        }
        for s in &mut tail_strata {
            s.sort_unstable(); // deterministic within the stratum
        }

        // --- Rule arenas in the patched order: surviving strata
        // keep their slots (spliced rules at the end of their
        // stratum), tail strata follow. ---------------------------
        let n_new = n_old - removed.len() + added.len();
        let n_strata_new = n_strata_old + n_tail_sccs;
        let mut heads: Vec<GLit> = Vec::with_capacity(n_new);
        let mut comps: Vec<CompId> = Vec::with_capacity(n_new);
        let mut global: Vec<u32> = Vec::with_capacity(n_new);
        let mut body_off: Vec<u32> = Vec::with_capacity(n_new + 1);
        let mut body: Vec<GLit> = Vec::with_capacity(self.body.len());
        let mut stratum_off: Vec<u32> = Vec::with_capacity(n_strata_new + 1);
        body_off.push(0);
        stratum_off.push(0);
        for (s, spliced) in into_stratum.iter().enumerate() {
            let (lo, hi) = self.stratum(s);
            for f in lo..hi {
                if dead[f as usize] {
                    continue;
                }
                heads.push(self.heads[f as usize]);
                comps.push(self.comps[f as usize]);
                // Stale on patched views — see `global_index`.
                global.push(self.global[f as usize]);
                body.extend_from_slice(self.body(f));
                body_off.push(body.len() as u32);
            }
            for &ri in spliced {
                let r = &gp.rules[ri as usize];
                heads.push(r.head);
                comps.push(r.comp);
                global.push(ri);
                body.extend_from_slice(&r.body);
                body_off.push(body.len() as u32);
            }
            stratum_off.push(heads.len() as u32);
        }
        for rules in &tail_strata {
            for &ri in rules {
                let r = &gp.rules[ri as usize];
                heads.push(r.head);
                comps.push(r.comp);
                global.push(ri);
                body.extend_from_slice(&r.body);
                body_off.push(body.len() as u32);
            }
            stratum_off.push(heads.len() as u32);
        }
        debug_assert_eq!(heads.len(), n_new);
        let mut level_off = self.level_off.clone();
        if n_tail_sccs > 0 {
            // All tail strata share one appended level; ordering
            // among them is carried by `stratum_preds`, which is what
            // the morsel scheduler keys on.
            level_off.push(n_strata_new as u32);
        }

        // --- Watch lists, head buckets, attack lists: recomputed
        // from the patched rule set by the same counting passes as
        // `from_rules` (linear; the expensive global stratification
        // is what the splice avoided). ----------------------------
        let codes = 2 * n_atoms;
        let mut watch_off = vec![0u32; codes + 1];
        for &b in &body {
            watch_off[b.code() + 1] += 1;
        }
        for c in 0..codes {
            watch_off[c + 1] += watch_off[c];
        }
        let mut watch = vec![0u32; body.len()];
        let mut cursor = watch_off.clone();
        for f in 0..n_new {
            for &b in &body[body_off[f] as usize..body_off[f + 1] as usize] {
                let c = b.code();
                watch[cursor[c] as usize] = f as u32;
                cursor[c] += 1;
            }
        }

        let mut head_off = vec![0u32; codes + 1];
        for &h in &heads {
            head_off[h.code() + 1] += 1;
        }
        for c in 0..codes {
            head_off[c + 1] += head_off[c];
        }
        let mut head_bucket = vec![0u32; n_new];
        let mut cursor = head_off.clone();
        for (f, &h) in heads.iter().enumerate() {
            let c = h.code();
            head_bucket[cursor[c] as usize] = f as u32;
            cursor[c] += 1;
        }

        let mut over_off = vec![0u32; n_new + 1];
        let mut defeat_off = vec![0u32; n_new + 1];
        let mut vover_off = vec![0u32; n_new + 1];
        let mut vdefeat_off = vec![0u32; n_new + 1];
        let attackers = |f: usize| {
            let c = heads[f].complement().code();
            &head_bucket[head_off[c] as usize..head_off[c + 1] as usize]
        };
        for f in 0..n_new {
            for &a in attackers(f) {
                if gp.order.can_overrule(comps[a as usize], comps[f]) {
                    over_off[f + 1] += 1;
                    vover_off[a as usize + 1] += 1;
                }
                if gp.order.can_defeat(comps[a as usize], comps[f]) {
                    defeat_off[f + 1] += 1;
                    vdefeat_off[a as usize + 1] += 1;
                }
            }
        }
        for f in 0..n_new {
            over_off[f + 1] += over_off[f];
            defeat_off[f + 1] += defeat_off[f];
            vover_off[f + 1] += vover_off[f];
            vdefeat_off[f + 1] += vdefeat_off[f];
        }
        let mut over = vec![0u32; over_off[n_new] as usize];
        let mut defeat = vec![0u32; defeat_off[n_new] as usize];
        let mut vover = vec![0u32; vover_off[n_new] as usize];
        let mut vdefeat = vec![0u32; vdefeat_off[n_new] as usize];
        let mut co = over_off.clone();
        let mut cd = defeat_off.clone();
        let mut cvo = vover_off.clone();
        let mut cvd = vdefeat_off.clone();
        for f in 0..n_new {
            for &a in attackers(f) {
                if gp.order.can_overrule(comps[a as usize], comps[f]) {
                    over[co[f] as usize] = a;
                    co[f] += 1;
                    vover[cvo[a as usize] as usize] = f as u32;
                    cvo[a as usize] += 1;
                }
                if gp.order.can_defeat(comps[a as usize], comps[f]) {
                    defeat[cd[f] as usize] = a;
                    cd[f] += 1;
                    vdefeat[cvd[a as usize] as usize] = f as u32;
                    cvd[a as usize] += 1;
                }
            }
        }

        // --- Stratum dependency edges over the patched ownership
        // map (tail atoms now owned by their appended strata). -----
        for (slot, &a) in tail_atoms.iter().enumerate() {
            stratum_of_atom[a as usize] = (n_strata_old + tail_scc_of[slot] as usize) as u32;
        }
        let mut pred_off = vec![0u32; n_strata_new + 1];
        let mut preds: Vec<u32> = Vec::new();
        let mut scratch: Vec<u32> = Vec::new();
        for si in 0..n_strata_new {
            scratch.clear();
            let (lo, hi) = (stratum_off[si] as usize, stratum_off[si + 1] as usize);
            for f in lo..hi {
                for &b in &body[body_off[f] as usize..body_off[f + 1] as usize] {
                    let ti = stratum_of_atom[b.atom().index()];
                    if ti != u32::MAX && ti != si as u32 {
                        debug_assert!(ti < si as u32, "patched strata must stay topological");
                        scratch.push(ti);
                    }
                }
            }
            scratch.sort_unstable();
            scratch.dedup();
            preds.extend_from_slice(&scratch);
            pred_off[si + 1] = preds.len() as u32;
        }

        FlatPatch::Patched(FlatView {
            comp: self.comp,
            n_atoms,
            heads,
            comps,
            body_off,
            body,
            watch_off,
            watch,
            over_off,
            over,
            defeat_off,
            defeat,
            vover_off,
            vover,
            vdefeat_off,
            vdefeat,
            stratum_off,
            level_off,
            pred_off,
            preds,
            global,
        })
    }

    /// Number of rules.
    #[inline]
    pub fn len(&self) -> usize {
        self.heads.len()
    }

    /// Whether the view has no rules.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heads.is_empty()
    }

    /// Head literal of flat rule `f`.
    #[inline]
    pub fn head(&self, f: FlatIdx) -> GLit {
        self.heads[f as usize]
    }

    /// Source component of flat rule `f`.
    #[inline]
    pub fn rule_comp(&self, f: FlatIdx) -> CompId {
        self.comps[f as usize]
    }

    /// Body literals of flat rule `f`.
    #[inline]
    pub fn body(&self, f: FlatIdx) -> &[GLit] {
        let f = f as usize;
        &self.body[self.body_off[f] as usize..self.body_off[f + 1] as usize]
    }

    /// Flat rules with literal `l` in the body.
    #[inline]
    pub fn watchers(&self, l: GLit) -> &[u32] {
        let c = l.code();
        &self.watch[self.watch_off[c] as usize..self.watch_off[c + 1] as usize]
    }

    /// Potential overrulers of flat rule `f`.
    #[inline]
    pub fn overrulers(&self, f: FlatIdx) -> &[u32] {
        let f = f as usize;
        &self.over[self.over_off[f] as usize..self.over_off[f + 1] as usize]
    }

    /// Potential defeaters of flat rule `f`.
    #[inline]
    pub fn defeaters(&self, f: FlatIdx) -> &[u32] {
        let f = f as usize;
        &self.defeat[self.defeat_off[f] as usize..self.defeat_off[f + 1] as usize]
    }

    /// Rules that flat rule `f` can overrule.
    #[inline]
    pub fn victims_overrule(&self, f: FlatIdx) -> &[u32] {
        let f = f as usize;
        &self.vover[self.vover_off[f] as usize..self.vover_off[f + 1] as usize]
    }

    /// Rules that flat rule `f` can defeat.
    #[inline]
    pub fn victims_defeat(&self, f: FlatIdx) -> &[u32] {
        let f = f as usize;
        &self.vdefeat[self.vdefeat_off[f] as usize..self.vdefeat_off[f + 1] as usize]
    }

    /// Number of strata (contiguous rule ranges; all non-empty unless
    /// the view itself is empty).
    #[inline]
    pub fn n_strata(&self) -> usize {
        self.stratum_off.len() - 1
    }

    /// Flat rule range of stratum `s`.
    #[inline]
    pub fn stratum(&self, s: usize) -> (u32, u32) {
        (self.stratum_off[s], self.stratum_off[s + 1])
    }

    /// Number of dependency levels.
    #[inline]
    pub fn n_levels(&self) -> usize {
        self.level_off.len() - 1
    }

    /// Stratum index range of level `l`.
    #[inline]
    pub fn level(&self, l: usize) -> (u32, u32) {
        (self.level_off[l], self.level_off[l + 1])
    }

    /// Distinct predecessor strata of stratum `s` (strata owning
    /// out-of-stratum body atoms of its rules).
    #[inline]
    pub fn stratum_preds(&self, s: usize) -> &[u32] {
        &self.preds[self.pred_off[s] as usize..self.pred_off[s + 1] as usize]
    }

    /// Global index (into [`GroundProgram::rules`]) of flat rule `f`.
    ///
    /// Diagnostic only: on a view produced by [`FlatView::apply_delta`]
    /// the entries of *retained* rules still refer to the program the
    /// view was last **built** from — splicing does not remap them
    /// (evaluation never reads them; content lookups go through
    /// [`FlatView::locate`]).
    #[inline]
    pub fn global_index(&self, f: FlatIdx) -> u32 {
        self.global[f as usize]
    }

    /// Evaluation weight of stratum `s`: rules plus body and attack
    /// edges — the work its fixpoint touches. Drives size-balanced
    /// morsel partitioning.
    pub fn stratum_weight(&self, s: usize) -> u64 {
        let (lo, hi) = self.stratum(s);
        let (lo, hi) = (lo as usize, hi as usize);
        let rules = (hi - lo) as u64;
        let bodies = u64::from(self.body_off[hi] - self.body_off[lo]);
        let attacks = u64::from(self.over_off[hi] - self.over_off[lo])
            + u64::from(self.defeat_off[hi] - self.defeat_off[lo]);
        rules + bodies + attacks
    }

    /// Partitions the strata of every level into size-balanced
    /// [`Morsel`]s of roughly `target` weight (see
    /// [`FlatView::stratum_weight`]): walk the level's strata in order,
    /// cut when the accumulated weight reaches `target` or the level
    /// ends. Morsels never split a stratum (its worklist is inherently
    /// sequential) and never span levels (the scheduler's dependency
    /// counting assumes a morsel's inputs are outside it).
    ///
    /// The returned morsels tile the flat rule range exactly: every
    /// rule belongs to exactly one morsel (property-tested).
    pub fn morsels(&self, target: u64) -> Vec<Morsel> {
        let target = target.max(1);
        let mut out = Vec::new();
        if self.is_empty() {
            return out;
        }
        for l in 0..self.n_levels() {
            let (slo, shi) = self.level(l);
            let mut s = slo;
            while s < shi {
                let start = s;
                let mut weight = 0u64;
                while s < shi {
                    weight += self.stratum_weight(s as usize);
                    s += 1;
                    if weight >= target {
                        break;
                    }
                }
                out.push(Morsel {
                    rule_lo: self.stratum_off[start as usize],
                    rule_hi: self.stratum_off[s as usize],
                    stratum_lo: start,
                    stratum_hi: s,
                    level: l as u32,
                });
            }
        }
        out
    }
}

/// Per-(predicate, sign) cardinality and distinct-value statistics of a
/// ground program — the grounding-time statistics that drive the join
/// planner, summarised post-hoc for inspection (`olp check`, REPL
/// `stats`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredStats {
    /// The predicate.
    pub pred: PredId,
    /// The literal sign.
    pub sign: Sign,
    /// Number of distinct ground atoms with this (pred, sign) occurring
    /// in the program (heads or bodies).
    pub cardinality: usize,
    /// Distinct term values per argument position.
    pub distinct: Vec<usize>,
}

/// Program-level statistics: per-(pred, sign) [`PredStats`] plus the
/// structural counts the morsel partitioner keys on.
#[derive(Debug, Clone, Default)]
pub struct ProgramStats {
    /// Per-(pred, sign) statistics, sorted by (pred, sign).
    pub preds: Vec<PredStats>,
    /// Total rules inspected.
    pub rules: usize,
    /// Total body literals.
    pub body_lits: usize,
}

impl ProgramStats {
    /// Collects statistics over the rules of `gp`'s view of `comp`.
    pub fn collect(world: &World, gp: &GroundProgram, comp: CompId) -> Self {
        use olp_core::FxHashMap;
        let mut seen: FxHashMap<(PredId, Sign), Vec<olp_core::AtomId>> = FxHashMap::default();
        let mut body_lits = 0usize;
        let mut rules = 0usize;
        let mut note = |l: GLit| {
            let pred = world.atoms.get(l.atom()).pred;
            seen.entry((pred, l.sign())).or_default().push(l.atom());
        };
        for (_, r) in gp.view_rules(comp) {
            rules += 1;
            note(r.head);
            for &b in &r.body {
                body_lits += 1;
                note(b);
            }
        }
        let mut preds: Vec<PredStats> = seen
            .into_iter()
            .map(|((pred, sign), mut atoms)| {
                atoms.sort_unstable();
                atoms.dedup();
                let arity = world.preds.arity(pred) as usize;
                let mut per_pos: Vec<Vec<olp_core::GTermId>> = vec![Vec::new(); arity];
                for &a in &atoms {
                    for (i, &t) in world.atoms.get(a).args.iter().enumerate() {
                        per_pos[i].push(t);
                    }
                }
                let distinct = per_pos
                    .into_iter()
                    .map(|mut v| {
                        v.sort_unstable();
                        v.dedup();
                        v.len()
                    })
                    .collect();
                PredStats {
                    pred,
                    sign,
                    cardinality: atoms.len(),
                    distinct,
                }
            })
            .collect();
        preds.sort_unstable_by_key(|p| (p.pred, p.sign));
        ProgramStats {
            preds,
            rules,
            body_lits,
        }
    }

    /// Renders the statistics, one `(pred, sign)` per line.
    pub fn render(&self, world: &World) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "rules: {}, body literals: {}",
            self.rules, self.body_lits
        );
        for p in &self.preds {
            let info = world.preds.info(p.pred);
            let name = world.syms.name(info.name);
            let sign = if p.sign == Sign::Pos { "" } else { "-" };
            let distinct: Vec<String> = p.distinct.iter().map(usize::to_string).collect();
            let _ = writeln!(
                out,
                "  {}{}/{}: {} atoms, distinct per arg [{}]",
                sign,
                name,
                info.arity,
                p.cardinality,
                distinct.join(", ")
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::GroundRule;
    use olp_core::{AtomId, Order};

    fn order1() -> Order {
        Order::from_edges(1, &[]).unwrap()
    }

    fn lit(a: u32) -> GLit {
        GLit::pos(AtomId(a))
    }

    /// a :- b.  b :- c.  c.  d :- d.  (chain + self-loop)
    fn chain() -> GroundProgram {
        let rules = vec![
            GroundRule::new(lit(0), vec![lit(1)], CompId(0)),
            GroundRule::new(lit(1), vec![lit(2)], CompId(0)),
            GroundRule::new(lit(2), vec![], CompId(0)),
            GroundRule::new(lit(3), vec![lit(3)], CompId(0)),
        ];
        GroundProgram::new(rules, order1(), 4)
    }

    #[test]
    fn strata_are_topologically_ordered_rule_ranges() {
        let gp = chain();
        let fv = FlatView::new(&gp, CompId(0));
        assert_eq!(fv.len(), 4);
        // Every body atom's defining stratum precedes (or equals) the
        // head's stratum in flat order.
        for s in 0..fv.n_strata() {
            let (lo, hi) = fv.stratum(s);
            for f in lo..hi {
                for &b in fv.body(f) {
                    for &w in fv.watchers(b) {
                        assert!(w >= lo, "watcher {w} before its literal's stratum");
                    }
                }
            }
            for &p in fv.stratum_preds(s) {
                assert!((p as usize) < s, "predecessor stratum not earlier");
            }
        }
        // Levels tile the strata.
        let mut strata_seen = 0;
        for l in 0..fv.n_levels() {
            let (lo, hi) = fv.level(l);
            assert_eq!(lo, strata_seen);
            strata_seen = hi;
        }
        assert_eq!(strata_seen as usize, fv.n_strata());
    }

    #[test]
    fn watchers_and_bodies_agree() {
        let gp = chain();
        let fv = FlatView::new(&gp, CompId(0));
        for f in 0..fv.len() as u32 {
            for &b in fv.body(f) {
                assert!(fv.watchers(b).contains(&f));
            }
        }
        // Total watch entries == total body literals.
        let total: usize = (0..fv.len() as u32).map(|f| fv.body(f).len()).sum();
        assert_eq!(fv.watch.len(), total);
    }

    #[test]
    fn attacks_respect_order() {
        // p. and -p. in one component: mutual defeaters, no overruling.
        let rules = vec![
            GroundRule::new(GLit::pos(AtomId(0)), vec![], CompId(0)),
            GroundRule::new(GLit::neg(AtomId(0)), vec![], CompId(0)),
        ];
        let gp = GroundProgram::new(rules, order1(), 1);
        let fv = FlatView::new(&gp, CompId(0));
        for f in 0..2u32 {
            assert_eq!(fv.overrulers(f).len(), 0);
            assert_eq!(fv.defeaters(f).len(), 1);
            assert_eq!(fv.victims_defeat(f).len(), 1);
            assert_ne!(fv.defeaters(f)[0], f);
        }
    }

    #[test]
    fn morsels_tile_rules_exactly() {
        let gp = chain();
        let fv = FlatView::new(&gp, CompId(0));
        for target in [1u64, 2, 3, 100] {
            let ms = fv.morsels(target);
            let mut covered = 0u32;
            for m in &ms {
                assert_eq!(m.rule_lo, covered, "gap or overlap at target {target}");
                assert!(m.rule_hi > m.rule_lo || m.stratum_hi > m.stratum_lo);
                covered = m.rule_hi;
            }
            assert_eq!(covered as usize, fv.len(), "morsels must cover all rules");
        }
        assert!(fv.morsels(1).len() >= fv.morsels(100).len());
    }

    #[test]
    fn empty_view_is_well_formed() {
        let gp = GroundProgram::new(Vec::new(), order1(), 0);
        let fv = FlatView::new(&gp, CompId(0));
        assert!(fv.is_empty());
        assert_eq!(fv.n_strata(), 1);
        assert_eq!(fv.stratum(0), (0, 0));
        assert!(fv.morsels(8).is_empty());
    }

    /// Structural invariants every view — built or patched — must
    /// hold: strata tile the rules, levels tile the strata, rules
    /// sharing a head atom share a stratum, body dependencies never
    /// point forward, `stratum_preds` is exact, watch lists agree
    /// with bodies, and attack lists match a direct recomputation
    /// with exact victim transposes.
    fn check_well_formed(fv: &FlatView, gp: &GroundProgram) {
        let n = fv.len() as u32;
        let mut prev = 0u32;
        for s in 0..fv.n_strata() {
            let (lo, hi) = fv.stratum(s);
            assert_eq!(lo, prev, "strata must tile the rules");
            assert!(hi >= lo);
            prev = hi;
        }
        assert_eq!(prev, n);
        let mut prev = 0u32;
        for l in 0..fv.n_levels() {
            let (lo, hi) = fv.level(l);
            assert_eq!(lo, prev, "levels must tile the strata");
            prev = hi;
        }
        assert_eq!(prev as usize, fv.n_strata());
        let mut stratum_of_atom: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        for s in 0..fv.n_strata() {
            let (lo, hi) = fv.stratum(s);
            for f in lo..hi {
                let a = fv.head(f).atom().index();
                let owner = stratum_of_atom.entry(a).or_insert(s);
                assert_eq!(*owner, s, "head atom {a} split across strata");
            }
        }
        for s in 0..fv.n_strata() {
            let (lo, hi) = fv.stratum(s);
            let mut want_preds: Vec<u32> = Vec::new();
            for f in lo..hi {
                for &b in fv.body(f) {
                    if let Some(&t) = stratum_of_atom.get(&b.atom().index()) {
                        assert!(t <= s, "body dependency points forward");
                        if t != s {
                            want_preds.push(t as u32);
                        }
                    }
                }
            }
            want_preds.sort_unstable();
            want_preds.dedup();
            assert_eq!(fv.stratum_preds(s), &want_preds[..]);
        }
        for f in 0..n {
            for &b in fv.body(f) {
                assert!(fv.watchers(b).contains(&f));
            }
        }
        let total: usize = (0..n).map(|f| fv.body(f).len()).sum();
        let all_watch: usize = (0..2 * fv.n_atoms)
            .map(|c| fv.watchers(GLit::from_code(c)).len())
            .sum();
        assert_eq!(all_watch, total);
        for f in 0..n {
            let hc = fv.head(f).complement();
            let mut want: Vec<u32> = (0..n)
                .filter(|&a| {
                    fv.head(a) == hc && gp.order.can_overrule(fv.rule_comp(a), fv.rule_comp(f))
                })
                .collect();
            let mut got = fv.overrulers(f).to_vec();
            want.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, want, "overrulers of {f}");
            let mut want: Vec<u32> = (0..n)
                .filter(|&a| {
                    fv.head(a) == hc && gp.order.can_defeat(fv.rule_comp(a), fv.rule_comp(f))
                })
                .collect();
            let mut got = fv.defeaters(f).to_vec();
            want.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, want, "defeaters of {f}");
            for &a in fv.overrulers(f) {
                assert!(fv.victims_overrule(a).contains(&f));
            }
            for &a in fv.defeaters(f) {
                assert!(fv.victims_defeat(a).contains(&f));
            }
            for &v in fv.victims_overrule(f) {
                assert!(fv.overrulers(v).contains(&f));
            }
            for &v in fv.victims_defeat(f) {
                assert!(fv.defeaters(v).contains(&f));
            }
        }
    }

    /// The view's rule multiset equals the program's view of `c`.
    fn assert_matches_view(fv: &FlatView, gp: &GroundProgram, c: CompId) {
        let mut got: Vec<(GLit, Vec<GLit>, CompId)> = (0..fv.len() as u32)
            .map(|f| (fv.head(f), fv.body(f).to_vec(), fv.rule_comp(f)))
            .collect();
        let mut want: Vec<(GLit, Vec<GLit>, CompId)> = gp
            .view(c)
            .iter()
            .map(|&ri| {
                let r = &gp.rules[ri as usize];
                (r.head, r.body.to_vec(), r.comp)
            })
            .collect();
        got.sort();
        want.sort();
        assert_eq!(got, want, "rule set diverges from the program view");
    }

    /// Drives `apply_delta` the way `Kb::commit` does: diff the
    /// programs, restrict to the view, locate removals by content.
    fn patch_via_delta(old: &GroundProgram, new: &GroundProgram, c: CompId) -> FlatPatch {
        let fv = FlatView::new(old, c);
        let d = crate::delta::GroundDelta::between(old, new);
        let (added, removed) = d.for_view(old, new, c);
        let refs: Vec<&GroundRule> = removed.iter().map(|&i| &old.rules[i as usize]).collect();
        let flat_removed = fv.locate(&refs).expect("removed rules are in the view");
        fv.apply_delta(new, &added, &flat_removed)
    }

    #[test]
    fn locate_matches_by_content() {
        let gp = chain();
        let fv = FlatView::new(&gp, CompId(0));
        let refs: Vec<&GroundRule> = gp.rules.iter().collect();
        let flat = fv.locate(&refs).expect("all rules present");
        for (k, r) in gp.rules.iter().enumerate() {
            let f = flat[k];
            assert_eq!(fv.head(f), r.head);
            assert_eq!(fv.body(f), &r.body[..]);
        }
        let absent = GroundRule::new(lit(0), vec![lit(3)], CompId(0));
        assert!(fv.locate(&[&absent]).is_none());
    }

    #[test]
    fn splice_into_existing_stratum_patches() {
        let old = chain();
        let mut rules: Vec<GroundRule> = old.rules.clone();
        // a :- c: head atom 0 already owns a stratum, body atom 2 is
        // defined strictly earlier — stratum-local.
        rules.push(GroundRule::new(lit(0), vec![lit(2)], CompId(0)));
        let new = GroundProgram::new(rules, order1(), 4);
        match patch_via_delta(&old, &new, CompId(0)) {
            FlatPatch::Patched(p) => {
                let fv_old = FlatView::new(&old, CompId(0));
                assert_eq!(p.n_strata(), fv_old.n_strata(), "no new strata needed");
                check_well_formed(&p, &new);
                assert_matches_view(&p, &new, CompId(0));
            }
            FlatPatch::Rebuild => panic!("stratum-local assert must patch"),
        }
    }

    #[test]
    fn fresh_atoms_append_tail_strata() {
        let old = chain();
        let mut rules: Vec<GroundRule> = old.rules.clone();
        // e. and f :- e over fresh atoms: two tail strata in
        // dependency order, one appended level.
        rules.push(GroundRule::new(lit(4), vec![], CompId(0)));
        rules.push(GroundRule::new(lit(5), vec![lit(4)], CompId(0)));
        let new = GroundProgram::new(rules, order1(), 6);
        let fv_old = FlatView::new(&old, CompId(0));
        match patch_via_delta(&old, &new, CompId(0)) {
            FlatPatch::Patched(p) => {
                assert_eq!(p.n_strata(), fv_old.n_strata() + 2);
                assert_eq!(p.n_levels(), fv_old.n_levels() + 1);
                assert_eq!(p.n_atoms, 6);
                check_well_formed(&p, &new);
                assert_matches_view(&p, &new, CompId(0));
            }
            FlatPatch::Rebuild => panic!("fresh-atom assert must patch"),
        }
    }

    #[test]
    fn back_edge_forces_rebuild() {
        let old = chain();
        let mut rules: Vec<GroundRule> = old.rules.clone();
        // c :- a: atom 2's stratum precedes atom 0's — the SCC
        // condensation collapses, the splice must refuse.
        rules.push(GroundRule::new(lit(2), vec![lit(0)], CompId(0)));
        let new = GroundProgram::new(rules, order1(), 4);
        assert!(matches!(
            patch_via_delta(&old, &new, CompId(0)),
            FlatPatch::Rebuild
        ));
    }

    #[test]
    fn retained_watcher_of_fresh_atom_forces_rebuild() {
        // a :- e with e undefined; then e. arrives: the surviving
        // rule would have to run after the tail.
        let old = GroundProgram::new(
            vec![GroundRule::new(lit(0), vec![lit(4)], CompId(0))],
            order1(),
            5,
        );
        let mut rules: Vec<GroundRule> = old.rules.clone();
        rules.push(GroundRule::new(lit(4), vec![], CompId(0)));
        let new = GroundProgram::new(rules, order1(), 5);
        assert!(matches!(
            patch_via_delta(&old, &new, CompId(0)),
            FlatPatch::Rebuild
        ));
    }

    #[test]
    fn removal_leaves_empty_stratum_in_place() {
        let old = chain();
        let rules: Vec<GroundRule> = old
            .rules
            .iter()
            .filter(|r| !(r.head == lit(2) && r.body.is_empty()))
            .cloned()
            .collect();
        let new = GroundProgram::new(rules, order1(), 4);
        let fv_old = FlatView::new(&old, CompId(0));
        match patch_via_delta(&old, &new, CompId(0)) {
            FlatPatch::Patched(p) => {
                assert_eq!(p.len(), fv_old.len() - 1);
                assert_eq!(
                    p.n_strata(),
                    fv_old.n_strata(),
                    "the emptied stratum keeps its slot"
                );
                assert!((0..p.n_strata()).any(|s| {
                    let (lo, hi) = p.stratum(s);
                    lo == hi
                }));
                check_well_formed(&p, &new);
                assert_matches_view(&p, &new, CompId(0));
            }
            FlatPatch::Rebuild => panic!("pure removal must patch"),
        }
    }

    mod patch_props {
        use super::*;
        use olp_core::Order;
        use proptest::prelude::*;

        const N_ATOMS: usize = 5;

        fn order2() -> Order {
            Order::from_edges(2, &[(CompId(0), CompId(1))]).unwrap()
        }

        fn arb_rule() -> impl Strategy<Value = GroundRule> {
            (
                any::<bool>(),
                0..N_ATOMS as u32,
                0..2u32,
                proptest::collection::vec((any::<bool>(), 0..N_ATOMS as u32), 0..3),
            )
                .prop_map(|(hp, ha, comp, body)| {
                    let lit = |p: bool, a: u32| {
                        if p {
                            GLit::pos(AtomId(a))
                        } else {
                            GLit::neg(AtomId(a))
                        }
                    };
                    GroundRule::new(
                        lit(hp, ha),
                        body.into_iter().map(|(p, a)| lit(p, a)).collect(),
                        CompId(comp),
                    )
                })
        }

        proptest! {
            /// A patched view is structurally equivalent to a
            /// from-scratch rebuild: same rule multiset as the new
            /// program's view, and every arena invariant holds —
            /// strata topological, attacks content-exact, watches
            /// consistent. (Byte-identical *models* through the
            /// patched arenas are proven end-to-end by the
            /// differential proptest in `tests/incremental.rs`.)
            #[test]
            fn patch_is_structurally_equivalent_to_rebuild(
                base in proptest::collection::vec(arb_rule(), 1..12),
                adds in proptest::collection::vec(arb_rule(), 0..4),
                remove_mask in any::<u16>(),
            ) {
                let order = order2();
                let old = GroundProgram::new(base, order.clone(), N_ATOMS);
                let mut kept: Vec<GroundRule> = old
                    .rules
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| remove_mask & (1 << (i % 16)) == 0)
                    .map(|(_, r)| r.clone())
                    .collect();
                kept.extend(adds.iter().cloned());
                let new = GroundProgram::new(kept, order, N_ATOMS);
                let delta = crate::delta::GroundDelta::between(&old, &new);
                for c in 0..2u32 {
                    let c = CompId(c);
                    let fv = FlatView::new(&old, c);
                    let (added, removed) = delta.for_view(&old, &new, c);
                    let refs: Vec<&GroundRule> =
                        removed.iter().map(|&i| &old.rules[i as usize]).collect();
                    let flat_removed = fv.locate(&refs);
                    prop_assert!(
                        flat_removed.is_some(),
                        "a view must contain its removed rules"
                    );
                    match fv.apply_delta(&new, &added, &flat_removed.unwrap()) {
                        FlatPatch::Patched(p) => {
                            check_well_formed(&p, &new);
                            assert_matches_view(&p, &new, c);
                        }
                        FlatPatch::Rebuild => {} // honest fallback
                    }
                }
            }
        }
    }
}
