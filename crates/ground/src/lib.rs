//! # olp-ground — grounding ordered logic programs
//!
//! Turns an [`olp_core::OrderedProgram`] (rules with variables,
//! function symbols, and arithmetic comparisons) into a
//! [`GroundProgram`]: flat instances over packed literals, tagged with
//! their source component, plus per-component *views* (`ground(C*)`).
//!
//! Two grounders are provided:
//!
//! * [`ground_exhaustive`] — full instantiation over the depth-bounded
//!   Herbrand universe. The semantic reference; exact per §2 of the
//!   paper. Exponential in rule arity, intended for the paper's example
//!   programs and for validating the smart grounder.
//! * [`ground_smart`] — relevance-restricted, join-based instantiation.
//!   Sound and complete for the **least model, assumption-free models
//!   and stable models** (everything the paper derives *from rules*);
//!   arbitrary models containing assumptions over unreached atoms are
//!   out of its scope. See [`smart`] for the algorithm and the
//!   eternal-attacker construction that keeps overruling/defeating
//!   faithful.
//!
//! ```
//! use olp_core::World;
//! use olp_parser::parse_program;
//! use olp_ground::{ground_smart, GroundConfig};
//!
//! let mut w = World::new();
//! let prog = parse_program(&mut w, "
//!     parent(a,b). parent(b,c).
//!     anc(X,Y) :- parent(X,Y).
//!     anc(X,Y) :- parent(X,Z), anc(Z,Y).
//! ").unwrap();
//! let g = ground_smart(&mut w, &prog, &GroundConfig::default()).unwrap();
//! // 2 facts + 2 base instances + 1 transitive instance: the smart
//! // grounder only materialises derivable joins (exhaustive would
//! // produce 2 + 4 + 8 = 14 over the 2-constant universe… and far
//! // more as constants grow).
//! assert_eq!(g.len(), 5);
//! ```

#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(
    clippy::must_use_candidate,
    clippy::missing_panics_doc,
    clippy::missing_errors_doc,
    clippy::module_name_repetitions,
    clippy::cast_possible_truncation,
    clippy::doc_markdown,
    clippy::too_many_lines,
    clippy::similar_names,
    // Fixpoint/join code is written in the paper's notation: single
    // letters (rule r, literal l, component c) are the clearest names.
    clippy::many_single_char_names,
    // Local helper items next to their single use site read better
    // than hoisting them above unrelated setup code.
    clippy::items_after_statements
)]

pub mod delta;
pub mod demand;
pub mod exhaustive;
pub mod flat;
mod join;
pub mod program;
pub mod smart;
pub mod universe;

pub use delta::{DeltaGrounder, DeltaRuleId, GroundDelta};
pub use demand::{ground_smart_for, relevant_predicates};
pub use exhaustive::ground_exhaustive;
pub use flat::{FlatIdx, FlatPatch, FlatView, Morsel, PredStats, ProgramStats};
pub use program::{GroundProgram, GroundRule, RuleIdx};
pub use smart::{ground_smart, ground_smart_seeded};
pub use universe::{herbrand_universe, signature, GroundConfig, GroundError, Signature};
