//! Herbrand universe and base construction.
//!
//! `H_P` is the set of ground terms built from the constants and function
//! symbols of the program (§2). With function symbols it is infinite, so
//! construction is **depth-bounded** by [`GroundConfig::max_depth`] and
//! size-bounded by [`GroundConfig::max_terms`]; function-free programs
//! are unaffected by either bound.

use olp_core::{
    BodyItem, Budget, FxHashSet, GTermId, InterruptReason, OrderedProgram, Sym, Term, World,
};
use std::fmt;

/// Resource limits and bounds for grounding.
#[derive(Debug, Clone)]
pub struct GroundConfig {
    /// Maximum nesting depth of generated ground terms (0 = constants
    /// only). Function-free programs never reach the bound.
    pub max_depth: u32,
    /// Hard cap on the number of ground terms materialised.
    pub max_terms: usize,
    /// Hard cap on the number of rule instantiations *attempted*.
    pub max_instances: usize,
    /// Shared resource governor: deadline, step budget, cancellation.
    /// The default is unlimited; the instance caps above still apply.
    pub budget: Budget,
    /// Worker threads for the frontier-join phase of the smart/delta
    /// grounders. `1` (the default) runs everything on the calling
    /// thread; any value produces a bit-identical ground program (see
    /// `crate::smart` — phase A is read-only and phase B commits in a
    /// fixed order).
    pub threads: usize,
    /// Enables the selectivity-driven join planner (greedy body-literal
    /// reordering over the positional derivability index). `false`
    /// falls back to textual join order over unfiltered candidate
    /// lists — kept as an ablation baseline; the instance *set* is
    /// identical either way.
    pub plan: bool,
}

impl Default for GroundConfig {
    fn default() -> Self {
        GroundConfig {
            max_depth: 2,
            max_terms: 100_000,
            max_instances: 10_000_000,
            budget: Budget::unlimited(),
            threads: 1,
            plan: true,
        }
    }
}

/// Errors raised during grounding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroundError {
    /// The Herbrand universe exceeded [`GroundConfig::max_terms`].
    TooManyTerms(usize),
    /// Instantiation exceeded [`GroundConfig::max_instances`].
    TooManyInstances(usize),
    /// The component order is invalid.
    Order(olp_core::OrderError),
    /// The [`GroundConfig::budget`] ran out (deadline, step budget, or
    /// cancellation). Grounding is all-or-nothing — a partially ground
    /// program has no useful semantics — so exhaustion is an error, not
    /// a partial result.
    Interrupted(InterruptReason),
}

impl fmt::Display for GroundError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroundError::TooManyTerms(n) => {
                write!(
                    f,
                    "Herbrand universe exceeded {n} terms; raise max_terms or lower max_depth"
                )
            }
            GroundError::TooManyInstances(n) => {
                write!(
                    f,
                    "grounding exceeded {n} rule instantiations; raise max_instances"
                )
            }
            GroundError::Order(e) => write!(f, "invalid component order: {e}"),
            GroundError::Interrupted(r) => write!(f, "grounding interrupted: {r}"),
        }
    }
}

impl std::error::Error for GroundError {}

impl From<InterruptReason> for GroundError {
    fn from(r: InterruptReason) -> Self {
        GroundError::Interrupted(r)
    }
}

impl From<olp_core::OrderError> for GroundError {
    fn from(e: olp_core::OrderError) -> Self {
        GroundError::Order(e)
    }
}

/// The signature of a program: its constants and function symbols.
#[derive(Debug, Default)]
pub struct Signature {
    /// Ground constants appearing anywhere in the program (interned),
    /// in first-occurrence order.
    pub constants: Vec<GTermId>,
    /// Function symbols with their arities.
    pub funcs: Vec<(Sym, u32)>,
    /// Whether any rule contains a variable.
    pub has_vars: bool,
    /// Dedup index for `constants` (kept internal so collection stays
    /// linear in program size).
    seen_constants: FxHashSet<GTermId>,
}

fn walk_term(t: &Term, world: &mut World, sig: &mut Signature) {
    match t {
        Term::Var(_) => sig.has_vars = true,
        Term::Const(c) => {
            let id = world.terms.constant(*c);
            if sig.seen_constants.insert(id) {
                sig.constants.push(id);
            }
        }
        Term::Int(i) => {
            let id = world.terms.int(*i);
            if sig.seen_constants.insert(id) {
                sig.constants.push(id);
            }
        }
        Term::App(f, args) => {
            let key = (*f, args.len() as u32);
            if !sig.funcs.contains(&key) {
                sig.funcs.push(key);
            }
            for a in args {
                walk_term(a, world, sig);
            }
        }
    }
}

/// Collects the signature of `prog`, interning all constants.
///
/// Integers appearing in arithmetic expressions are *not* added (the
/// paper's comparisons filter instances; they do not generate terms).
pub fn signature(world: &mut World, prog: &OrderedProgram) -> Signature {
    let mut sig = Signature::default();
    for (_, rule) in prog.rules() {
        for t in &rule.head.args {
            walk_term(t, world, &mut sig);
        }
        for item in &rule.body {
            if let BodyItem::Lit(l) = item {
                for t in &l.args {
                    walk_term(t, world, &mut sig);
                }
            } else {
                sig.has_vars = sig.has_vars || {
                    let mut vs = Vec::new();
                    if let BodyItem::Cmp(c) = item {
                        c.collect_vars(&mut vs);
                    }
                    !vs.is_empty()
                };
            }
        }
    }
    sig
}

/// Builds the depth-bounded Herbrand universe from a signature.
///
/// If the program has variables but no constants, a fresh constant
/// (`#c`) is injected so that variables have something to range over —
/// the usual convention for an empty Herbrand universe.
pub fn herbrand_universe(
    world: &mut World,
    sig: &Signature,
    cfg: &GroundConfig,
) -> Result<Vec<GTermId>, GroundError> {
    let mut universe: Vec<GTermId> = sig.constants.clone();
    if universe.is_empty() && sig.has_vars {
        universe.push(world.constant("#c"));
    }
    if sig.funcs.is_empty() {
        return Ok(universe);
    }
    // Level-wise closure: at step d, combine terms of depth < d such
    // that at least one argument has depth d-1 (avoids regenerating
    // earlier levels).
    let mut frontier: Vec<GTermId> = universe.clone();
    for _depth in 1..=cfg.max_depth {
        let mut next = Vec::new();
        for &(f, arity) in &sig.funcs {
            let arity = arity as usize;
            // Enumerate argument tuples over `universe` where at least
            // one argument is from `frontier`.
            let mut idx = vec![0usize; arity];
            loop {
                cfg.budget.tick()?;
                let args: Vec<GTermId> = idx.iter().map(|&i| universe[i]).collect();
                if args.iter().any(|a| frontier.contains(a)) {
                    let t = world.terms.func(f, &args);
                    if !universe.contains(&t) && !next.contains(&t) {
                        next.push(t);
                        if universe.len() + next.len() > cfg.max_terms {
                            return Err(GroundError::TooManyTerms(cfg.max_terms));
                        }
                    }
                }
                // Advance the mixed-radix counter.
                let mut k = 0;
                loop {
                    if k == arity {
                        break;
                    }
                    idx[k] += 1;
                    if idx[k] < universe.len() {
                        break;
                    }
                    idx[k] = 0;
                    k += 1;
                }
                if k == arity {
                    break;
                }
            }
        }
        if next.is_empty() {
            break;
        }
        universe.extend(next.iter().copied());
        frontier = next;
    }
    Ok(universe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use olp_parser::parse_program;

    #[test]
    fn signature_collects_constants_and_funcs() {
        let mut w = World::new();
        let p = parse_program(
            &mut w,
            "bird(penguin). bird(pigeon). nat(s(zero)). fly(X) :- bird(X).",
        )
        .unwrap();
        let sig = signature(&mut w, &p);
        assert_eq!(sig.constants.len(), 3); // penguin, pigeon, zero
        assert_eq!(sig.funcs.len(), 1); // s/1
        assert!(sig.has_vars);
    }

    #[test]
    fn function_free_universe_is_constants() {
        let mut w = World::new();
        let p = parse_program(&mut w, "p(a). p(b). q(X) :- p(X).").unwrap();
        let sig = signature(&mut w, &p);
        let u = herbrand_universe(&mut w, &sig, &GroundConfig::default()).unwrap();
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn depth_bounded_universe_with_functions() {
        let mut w = World::new();
        let p = parse_program(&mut w, "nat(zero). nat(s(X)) :- nat(X).").unwrap();
        let sig = signature(&mut w, &p);
        let cfg = GroundConfig {
            max_depth: 3,
            ..Default::default()
        };
        let u = herbrand_universe(&mut w, &sig, &cfg).unwrap();
        // zero, s(zero), s(s(zero)), s(s(s(zero)))
        assert_eq!(u.len(), 4);
        assert_eq!(u.iter().map(|&t| w.terms.depth(t)).max(), Some(3));
    }

    #[test]
    fn empty_universe_gets_fresh_constant() {
        let mut w = World::new();
        let p = parse_program(&mut w, "p(X) :- q(X).").unwrap();
        let sig = signature(&mut w, &p);
        let u = herbrand_universe(&mut w, &sig, &GroundConfig::default()).unwrap();
        assert_eq!(u.len(), 1);
        assert_eq!(w.term_str(u[0]), "#c");
    }

    #[test]
    fn term_cap_enforced() {
        let mut w = World::new();
        let p = parse_program(&mut w, "p(a). p(b). p(f(X,Y)) :- p(X), p(Y).").unwrap();
        let sig = signature(&mut w, &p);
        let cfg = GroundConfig {
            max_depth: 5,
            max_terms: 50,
            ..Default::default()
        };
        assert_eq!(
            herbrand_universe(&mut w, &sig, &cfg).unwrap_err(),
            GroundError::TooManyTerms(50)
        );
    }

    #[test]
    fn comparison_integers_do_not_generate_terms() {
        let mut w = World::new();
        let p = parse_program(&mut w, "q(a). p :- q(X), 3 > 2.").unwrap();
        let sig = signature(&mut w, &p);
        let u = herbrand_universe(&mut w, &sig, &GroundConfig::default()).unwrap();
        assert_eq!(u.len(), 1); // only `a`
    }
}
