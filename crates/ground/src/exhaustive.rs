//! The exhaustive (reference) grounder.
//!
//! Instantiates every rule with **every** substitution of its variables
//! over the depth-bounded Herbrand universe, keeping instances whose
//! comparisons evaluate to true. This is `ground(P)` exactly as defined
//! in §2 of the paper (modulo the depth bound), and is the semantic
//! reference the smart grounder is validated against.
//!
//! A comparison that cannot be evaluated (unbound variable, non-integer
//! term, division by zero, overflow) makes the instance **false** — the
//! instance is dropped, matching the convention that built-ins only hold
//! for well-typed ground instances.

use crate::program::{GroundProgram, GroundRule};
use crate::universe::{herbrand_universe, signature, GroundConfig, GroundError};
use olp_core::term::Bindings;
use olp_core::{BodyItem, CompId, GLit, Literal, OrderedProgram, Rule, World};

/// Instantiates `lit` under `bindings`, interning the ground atom.
fn intern_lit(world: &mut World, lit: &Literal, bindings: &Bindings) -> GLit {
    let mut args = Vec::with_capacity(lit.args.len());
    for t in &lit.args {
        args.push(
            t.intern(&mut world.terms, bindings)
                .expect("all rule variables are bound during exhaustive grounding"),
        );
    }
    let atom = world.atoms.intern(lit.pred, &args);
    GLit::new(lit.sign, atom)
}

/// Instantiates a single rule over the universe, appending instances.
fn instantiate_rule(
    world: &mut World,
    rule: &Rule,
    comp: CompId,
    universe: &[olp_core::GTermId],
    budget: &mut usize,
    cfg: &GroundConfig,
    out: &mut Vec<GroundRule>,
) -> Result<(), GroundError> {
    let vars = rule.vars();
    let k = vars.len();
    let mut bindings = Bindings::default();

    // Fast path: ground rule.
    if k == 0 {
        if *budget == 0 {
            return Err(GroundError::TooManyInstances(cfg.max_instances));
        }
        *budget -= 1;
        cfg.budget.tick()?;
        emit(world, rule, comp, &bindings, out);
        return Ok(());
    }
    if universe.is_empty() {
        // Nothing to range over: no instances.
        return Ok(());
    }
    // Mixed-radix counter over universe^k.
    let mut idx = vec![0usize; k];
    loop {
        if *budget == 0 {
            return Err(GroundError::TooManyInstances(cfg.max_instances));
        }
        *budget -= 1;
        cfg.budget.tick()?;
        bindings.clear();
        for (v, &i) in vars.iter().zip(idx.iter()) {
            bindings.insert(*v, universe[i]);
        }
        emit(world, rule, comp, &bindings, out);
        // Advance.
        let mut p = 0;
        loop {
            if p == k {
                return Ok(());
            }
            idx[p] += 1;
            if idx[p] < universe.len() {
                break;
            }
            idx[p] = 0;
            p += 1;
        }
    }
}

/// Evaluates comparisons and interns one instance if they hold.
fn emit(
    world: &mut World,
    rule: &Rule,
    comp: CompId,
    bindings: &Bindings,
    out: &mut Vec<GroundRule>,
) {
    for cmp in rule.body_cmps() {
        match cmp.eval(&world.terms, bindings) {
            Ok(true) => {}
            // False or ill-typed: instance dropped.
            Ok(false) | Err(_) => return,
        }
    }
    let head = intern_lit(world, &rule.head, bindings);
    let mut body = Vec::new();
    for item in &rule.body {
        if let BodyItem::Lit(l) = item {
            body.push(intern_lit(world, l, bindings));
        }
    }
    out.push(GroundRule::new(head, body, comp));
}

/// Grounds an ordered program exhaustively.
pub fn ground_exhaustive(
    world: &mut World,
    prog: &OrderedProgram,
    cfg: &GroundConfig,
) -> Result<GroundProgram, GroundError> {
    let order = prog.order()?;
    let sig = signature(world, prog);
    let universe = herbrand_universe(world, &sig, cfg)?;
    let mut budget = cfg.max_instances;
    let mut rules = Vec::new();
    for (comp, rule) in prog.rules() {
        instantiate_rule(world, rule, comp, &universe, &mut budget, cfg, &mut rules)?;
    }
    Ok(GroundProgram::new(rules, order, world.atoms.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use olp_parser::{parse_ground_literal, parse_program};

    fn ground(src: &str) -> (World, GroundProgram) {
        let mut w = World::new();
        let p = parse_program(&mut w, src).unwrap();
        let g = ground_exhaustive(&mut w, &p, &GroundConfig::default()).unwrap();
        (w, g)
    }

    #[test]
    fn fig1_grounding_counts() {
        let (_, g) = ground(
            "module c2 {
                bird(penguin). bird(pigeon).
                fly(X) :- bird(X).
                -ground_animal(X) :- bird(X).
             }
             module c1 < c2 {
                ground_animal(penguin).
                -fly(X) :- ground_animal(X).
             }",
        );
        // c2: 2 facts + 2 rules × 2 constants = 6; c1: 1 fact + 1 rule ×
        // 2 constants = 3.
        assert_eq!(g.len(), 9);
        // View of c1 sees everything; view of c2 sees only c2's 6.
        assert_eq!(g.view(olp_core::CompId(1)).len(), 9);
        assert_eq!(g.view(olp_core::CompId(0)).len(), 6);
    }

    #[test]
    fn comparisons_filter_instances() {
        let (mut w, g) = ground(
            "inflation(12).
             take_loan :- inflation(X), X > 11.
             no_loan :- inflation(X), X > 99.",
        );
        // inflation(12) fact + take_loan instance (12 > 11 holds); the
        // no_loan instance is dropped (12 > 99 fails).
        assert_eq!(g.len(), 2);
        let tl = parse_ground_literal(&mut w, "take_loan").unwrap();
        assert!(g.rules.iter().any(|r| r.head == tl));
    }

    #[test]
    fn arithmetic_in_comparisons() {
        let (mut w, g) = ground(
            "inflation(19). loan_rate(16).
             take_loan :- inflation(X), loan_rate(Y), X > Y + 2.",
        );
        assert_eq!(g.len(), 3);
        let tl = parse_ground_literal(&mut w, "take_loan").unwrap();
        assert!(g.rules.iter().any(|r| r.head == tl));
    }

    #[test]
    fn negated_heads_ground() {
        let (mut w, g) = ground("bird(tweety). -fly(X) :- bird(X).");
        let nf = parse_ground_literal(&mut w, "-fly(tweety)").unwrap();
        assert!(g.rules.iter().any(|r| r.head == nf && r.body.len() == 1));
    }

    #[test]
    fn function_symbols_bounded_depth() {
        let mut w = World::new();
        let p = parse_program(&mut w, "nat(zero). nat(s(X)) :- nat(X).").unwrap();
        let cfg = GroundConfig {
            max_depth: 3,
            ..Default::default()
        };
        let g = ground_exhaustive(&mut w, &p, &cfg).unwrap();
        // 1 fact + one instance of the rule per universe term (4 terms).
        assert_eq!(g.len(), 5);
    }

    #[test]
    fn instance_budget_enforced() {
        let mut w = World::new();
        let p = parse_program(&mut w, "p(a). p(b). p(c). q(X,Y,Z) :- p(X), p(Y), p(Z).").unwrap();
        let cfg = GroundConfig {
            max_instances: 10,
            ..Default::default()
        };
        assert_eq!(
            ground_exhaustive(&mut w, &p, &cfg).unwrap_err(),
            GroundError::TooManyInstances(10)
        );
    }

    #[test]
    fn unsafe_rule_ranges_over_universe() {
        // CWA-style non-ground fact: -p(X). (as produced by OV's reduced
        // form) must instantiate over the whole universe.
        let (_, g) = ground("q(a). q(b). -p(X).");
        assert_eq!(g.rules.iter().filter(|r| !r.head.is_pos()).count(), 2);
    }

    #[test]
    fn body_with_contradictory_literals_kept() {
        // p :- q, -q is never applicable but *is* a legal rule; statuses
        // are the semantics engine's business.
        let (_, g) = ground("p :- q, -q. q.");
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn duplicate_rule_instances_dedup_within_component() {
        // fly(X) :- bird(X) and fly(Y) :- bird(Y) produce identical
        // instances.
        let (_, g) = ground("bird(a). fly(X) :- bird(X). fly(Y) :- bird(Y).");
        assert_eq!(g.len(), 2);
    }
}
