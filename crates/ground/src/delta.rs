//! The delta (incremental) grounder.
//!
//! [`crate::ground_smart`] recomputes the entire derivability closure on
//! every call. A live knowledge base that asserts and retracts single
//! rules pays that full cost per mutation. [`DeltaGrounder`] instead
//! *persists* the smart grounder's state — the derivability closure
//! `D`, the active domain, and every phase-1 firing instance tagged
//! with the rule that produced it — and updates it per mutation:
//!
//! * **Assert**: the new rule is compiled and registered with the join
//!   drivers, its constants enter the active domain, and a single seed
//!   join runs it against the current `D`. The ordinary semi-naive
//!   closure then propagates: newly derived literals drive old and new
//!   rules alike, and active-domain growth re-runs the domain-dependent
//!   rules. This grounds exactly the asserted rule's instantiations
//!   plus the universe growth they induce.
//! * **Retract**: derivations are *non-monotone* under rule removal, so
//!   the grounder replays the retained instances **propositionally**: an
//!   instance fires iff its (distinct) body literals are all (re)derived
//!   and its recorded residual bindings lie within the rebuilt active
//!   domain. The replay is a counter-based worklist over stored
//!   instances — no joins, no variable matching — linear in the size of
//!   the previous grounding, and computes the exact least fixpoint the
//!   smart grounder would reach from scratch (the retained instance
//!   store is a superset of the from-scratch instance set, and
//!   admissibility re-checks exactly the conditions that gated their
//!   original emission).
//!
//! The closure and the seed join run through the same batch-synchronous
//! join engine as the smart grounder ([`crate::join`]): the read-only
//! match phase fans out over [`GroundConfig::threads`] workers (paying
//! off on large assert deltas), the commit phase is sequential, and the
//! result is independent of the thread count.
//!
//! Phase 2 (attacker instances, including the eternal-attacker
//! sentinel collapse — see [`crate::smart`]) is re-run from the updated
//! `D` on every mutation: attacks depend non-monotonically on
//! derivability in both directions, and the phase is cheap relative to
//! the closure (it never joins, only matches victims). Like the smart
//! grounder it enumerates a *sorted* copy of the active domain, so the
//! attacker set matches a from-scratch grounding even though the delta
//! grounder admits domain terms in a different order.
//!
//! **Invariant** (tested in this module and fuzzed in
//! `tests/incremental.rs`): after every successful operation, the
//! assembled [`GroundProgram`] is identical to what [`ground_smart`]
//! would produce on the mutated source program. On error (budget
//! exhaustion, instance cap) the internal state is unspecified; callers
//! must discard the grounder and fall back to a full reground.

use crate::join::{compile_body, frontier_join, match_lit, BodyPlan, DIndex, Item, Rec, SpendPool};
use crate::program::{GroundProgram, GroundRule};
use crate::universe::{GroundConfig, GroundError};
use olp_core::term::Bindings;
use olp_core::{
    AtomId, Budget, CompId, FxHashMap, FxHashSet, GLit, GTerm, GTermId, Literal, Order,
    OrderedProgram, PredId, Rule, Sign, Sym, Term, World,
};
use std::collections::VecDeque;

/// A rule compiled for joining, with liveness and its own constants.
/// The body literal patterns live in the parallel [`BodyPlan`] vector.
#[derive(Debug)]
struct DRule {
    comp: CompId,
    head: Literal,
    cmps: Vec<olp_core::Cmp>,
    vars: Vec<Sym>,
    /// Variables in no body literal: enumerated over the active domain.
    residual: Vec<Sym>,
    /// Ground constants occurring in the rule text (head and body
    /// literal arguments) — the rule's contribution to the seed domain.
    consts: Vec<GTermId>,
    /// Retracted rules stay registered (indices are stable) but dead.
    alive: bool,
}

/// A phase-1 firing instance with enough provenance to replay it.
#[derive(Debug)]
struct Inst {
    /// Index of the producing rule in [`DeltaGrounder::rules`].
    rule: u32,
    gr: GroundRule,
    /// The ground terms bound to the rule's residual variables at
    /// emission, deduplicated. The instance exists only while all of
    /// them remain in the active domain.
    residual_terms: Box<[GTermId]>,
}

/// Identifier of a registered rule, returned by
/// [`DeltaGrounder::assert_rule`] and consumed by
/// [`DeltaGrounder::retract_rule`].
pub type DeltaRuleId = u32;

/// Persistent incremental grounder: smart-grounder state that survives
/// across mutations. See the module docs for the algorithm.
#[derive(Debug)]
pub struct DeltaGrounder {
    order: Order,
    max_instances: usize,
    max_depth: u32,
    rules: Vec<DRule>,
    /// Compiled body plans, indexed like `rules`.
    plans: Vec<BodyPlan>,
    d_set: FxHashSet<GLit>,
    index: DIndex,
    adom: Vec<GTermId>,
    adom_set: FxHashSet<GTermId>,
    queue: VecDeque<GLit>,
    /// `(rule, body position)` join drivers per (pred, sign).
    drivers: FxHashMap<(PredId, Sign), Vec<(usize, usize)>>,
    /// Rules re-run whenever the active domain grows (facts and rules
    /// with residual variables).
    adom_dependent: Vec<usize>,
    /// Phase-1 instances, dedup'd by `seen`.
    insts: Vec<Inst>,
    seen: FxHashSet<(u32, GroundRule)>,
    /// Phase-2 output, rebuilt per mutation.
    out2: Vec<GroundRule>,
    /// Per-operation instance/step meter (rebuilt from `max_instances`
    /// and the caller's governor at the start of each mutation).
    pool: SpendPool,
    threads: usize,
    planner: bool,
}

/// Collects the interned constants of a rule's literal arguments
/// (head and body), recursing through compound terms. Mirrors what
/// [`crate::signature`] contributes for this rule.
fn rule_consts(world: &mut World, rule: &Rule) -> Vec<GTermId> {
    fn walk(t: &Term, world: &mut World, out: &mut Vec<GTermId>) {
        match t {
            Term::Var(_) => {}
            Term::Const(c) => {
                let id = world.terms.constant(*c);
                if !out.contains(&id) {
                    out.push(id);
                }
            }
            Term::Int(i) => {
                let id = world.terms.int(*i);
                if !out.contains(&id) {
                    out.push(id);
                }
            }
            Term::App(_, args) => {
                for a in args {
                    walk(a, world, out);
                }
            }
        }
    }
    let mut out = Vec::new();
    for t in &rule.head.args {
        walk(t, world, &mut out);
    }
    for l in rule.body_lits() {
        for t in &l.args {
            walk(t, world, &mut out);
        }
    }
    out
}

impl DeltaGrounder {
    /// Grounds `prog` from scratch and returns the grounder together
    /// with the initial [`GroundProgram`] — identical to what
    /// [`crate::ground_smart`] produces.
    pub fn new(
        world: &mut World,
        prog: &OrderedProgram,
        cfg: &GroundConfig,
    ) -> Result<(Self, GroundProgram), GroundError> {
        let order = prog.order()?;
        let mut g = DeltaGrounder {
            order,
            max_instances: cfg.max_instances,
            max_depth: cfg.max_depth,
            rules: Vec::new(),
            plans: Vec::new(),
            d_set: FxHashSet::default(),
            index: DIndex::default(),
            adom: Vec::new(),
            adom_set: FxHashSet::default(),
            queue: VecDeque::new(),
            drivers: FxHashMap::default(),
            adom_dependent: Vec::new(),
            insts: Vec::new(),
            seen: FxHashSet::default(),
            out2: Vec::new(),
            pool: SpendPool::new(cfg.max_instances, cfg.budget.clone()),
            threads: cfg.threads.max(1),
            planner: cfg.plan,
        };
        for (comp, rule) in prog.rules() {
            g.register(world, comp, rule);
        }
        for ix in 0..g.rules.len() {
            let cs = g.rules[ix].consts.clone();
            for c in cs {
                g.adom_add_term(world, c);
            }
        }
        g.run_closure(world)?;
        g.attackers(world)?;
        let gp = g.assemble(world);
        Ok((g, gp))
    }

    /// Registers a compiled rule; returns its id. Does not ground it.
    fn register(&mut self, world: &mut World, comp: CompId, rule: &Rule) -> DeltaRuleId {
        let ix = self.rules.len();
        let vars = rule.vars();
        let lits: Vec<Literal> = rule.body_lits().cloned().collect();
        let cmps: Vec<olp_core::Cmp> = rule.body_cmps().cloned().collect();
        let mut body_vars = Vec::new();
        for l in &lits {
            l.collect_vars(&mut body_vars);
        }
        let residual: Vec<Sym> = vars
            .iter()
            .copied()
            .filter(|v| !body_vars.contains(v))
            .collect();
        for (pos, l) in lits.iter().enumerate() {
            self.drivers
                .entry((l.pred, l.sign))
                .or_default()
                .push((ix, pos));
        }
        if lits.is_empty() || !residual.is_empty() {
            self.adom_dependent.push(ix);
        }
        // Counting-domain seed: a ground fact bumps the planner's
        // statistics prior for its (pred, sign) (re-asserting the same
        // fact bumps it again — seeds are priors, not exact counts,
        // and are superseded by measured statistics anyway).
        if rule.head.is_ground() && lits.is_empty() && cmps.is_empty() {
            self.index.seed(rule.head.pred, rule.head.sign, 1);
        }
        self.plans.push(compile_body(world, &lits));
        self.rules.push(DRule {
            comp,
            head: rule.head.clone(),
            cmps,
            vars,
            residual,
            consts: rule_consts(world, rule),
            alive: true,
        });
        ix as DeltaRuleId
    }

    /// Asserts `rule` into component `comp`: grounds only the new
    /// rule's instantiations plus whatever the derivability closure and
    /// active-domain growth they cause make newly derivable. Returns
    /// the rule's id (for later retraction) and the updated ground
    /// program.
    ///
    /// On `Err` the grounder's state is unspecified: discard it.
    pub fn assert_rule(
        &mut self,
        world: &mut World,
        comp: CompId,
        rule: &Rule,
        gov: &Budget,
    ) -> Result<(DeltaRuleId, GroundProgram), GroundError> {
        self.pool = SpendPool::new(self.max_instances, gov.clone());
        let id = self.register(world, comp, rule);
        let cs = self.rules[id as usize].consts.clone();
        for c in cs {
            self.adom_add_term(world, c);
        }
        // Seed join: instances of the new rule whose bodies are already
        // within `D` (later derivations drive it via `drivers`).
        self.run_batch(world, &[Item::Seed { rule: id as usize }])?;
        self.run_closure(world)?;
        self.attackers(world)?;
        Ok((id, self.assemble(world)))
    }

    /// Retracts a previously registered rule and replays the retained
    /// instances to the exact from-scratch fixpoint (see module docs).
    ///
    /// On `Err` the grounder's state is unspecified: discard it.
    pub fn retract_rule(
        &mut self,
        world: &mut World,
        id: DeltaRuleId,
        gov: &Budget,
    ) -> Result<GroundProgram, GroundError> {
        self.pool = SpendPool::new(self.max_instances, gov.clone());
        self.rules[id as usize].alive = false;
        self.replay(world)?;
        self.attackers(world)?;
        Ok(self.assemble(world))
    }

    /// Number of phase-1 + phase-2 instances currently held (diagnostic
    /// — the CLI's timing output reports the delta between mutations).
    pub fn instance_count(&self) -> usize {
        self.insts.len() + self.out2.len()
    }

    fn adom_add_term(&mut self, world: &World, t: GTermId) {
        if self.adom_set.insert(t) {
            self.adom.push(t);
            if let GTerm::Func(_, args) = world.terms.get(t).clone() {
                for a in &args {
                    self.adom_add_term(world, *a);
                }
            }
        }
    }

    fn d_add(&mut self, world: &World, l: GLit) {
        if self.d_set.insert(l) {
            self.index.add(world, l);
            let atom = world.atoms.get(l.atom()).clone();
            for &t in &atom.args {
                self.adom_add_term(world, t);
            }
            self.queue.push_back(l);
        }
    }

    fn intern_lit(world: &mut World, lit: &Literal, b: &Bindings) -> GLit {
        let mut args = Vec::with_capacity(lit.args.len());
        for t in &lit.args {
            args.push(
                t.intern(&mut world.terms, b)
                    .expect("variables bound at emission"),
            );
        }
        GLit::new(lit.sign, world.atoms.intern(lit.pred, &args))
    }

    /// Commits one phase-A match: enumerates residual variables over
    /// the active domain, then emits.
    fn commit(&mut self, world: &mut World, rec: Rec) -> Result<(), GroundError> {
        let Rec { rule, mut b, body } = rec;
        let residual: Vec<Sym> = self.rules[rule]
            .residual
            .iter()
            .copied()
            .filter(|v| !b.contains_key(v))
            .collect();
        if residual.is_empty() {
            return self.emit(world, rule, &b, &body);
        }
        let adom = self.adom.clone();
        if adom.is_empty() {
            return Ok(());
        }
        let k = residual.len();
        let mut idx = vec![0usize; k];
        loop {
            for (v, &i) in residual.iter().zip(idx.iter()) {
                b.insert(*v, adom[i]);
            }
            self.emit(world, rule, &b, &body)?;
            let mut p = 0;
            loop {
                if p == k {
                    return Ok(());
                }
                idx[p] += 1;
                if idx[p] < adom.len() {
                    break;
                }
                idx[p] = 0;
                p += 1;
            }
        }
    }

    fn emit(
        &mut self,
        world: &mut World,
        rule_ix: usize,
        b: &Bindings,
        body: &[GLit],
    ) -> Result<(), GroundError> {
        self.pool.spend(1)?;
        if b.values().any(|&t| world.terms.depth(t) > self.max_depth) {
            return Ok(());
        }
        for cmp in &self.rules[rule_ix].cmps {
            match cmp.eval(&world.terms, b) {
                Ok(true) => {}
                Ok(false) | Err(_) => return Ok(()),
            }
        }
        let head_lit = self.rules[rule_ix].head.clone();
        let head = Self::intern_lit(world, &head_lit, b);
        let comp = self.rules[rule_ix].comp;
        let gr = GroundRule::new(head, body.to_vec(), comp);
        self.d_add(world, head);
        if self.seen.insert((rule_ix as u32, gr.clone())) {
            let mut residual_terms: Vec<GTermId> = self.rules[rule_ix]
                .residual
                .iter()
                .filter_map(|v| b.get(v).copied())
                .collect();
            residual_terms.sort_unstable();
            residual_terms.dedup();
            self.insts.push(Inst {
                rule: rule_ix as u32,
                gr,
                residual_terms: residual_terms.into_boxed_slice(),
            });
        }
        Ok(())
    }

    /// One batch: phase-A join (parallel) + phase-B commit (in order).
    fn run_batch(&mut self, world: &mut World, items: &[Item]) -> Result<(), GroundError> {
        let recs = frontier_join(
            world,
            &self.plans,
            &self.index,
            items,
            self.threads,
            self.planner,
            &self.pool,
        )?;
        for per_item in recs {
            for rec in per_item {
                self.commit(world, rec)?;
            }
        }
        Ok(())
    }

    /// Semi-naive closure: drains the derivation queue batchwise,
    /// re-running the active-domain-dependent rules whenever the domain
    /// grows. All emissions are deduplicated against `seen`, so
    /// re-running is idempotent.
    fn run_closure(&mut self, world: &mut World) -> Result<(), GroundError> {
        let mut last_adom = usize::MAX;
        let mut items: Vec<Item> = Vec::new();
        loop {
            items.clear();
            if self.adom.len() != last_adom {
                last_adom = self.adom.len();
                items.extend(
                    self.adom_dependent
                        .iter()
                        .filter(|&&r| self.rules[r].alive)
                        .map(|&r| Item::Seed { rule: r }),
                );
            } else if !self.queue.is_empty() {
                while let Some(l) = self.queue.pop_front() {
                    let pred = world.atoms.get(l.atom()).pred;
                    if let Some(driven) = self.drivers.get(&(pred, l.sign())) {
                        items.extend(
                            driven
                                .iter()
                                .filter(|&&(rule, _)| self.rules[rule].alive)
                                .map(|&(rule, pos)| Item::Drive { lit: l, rule, pos }),
                        );
                    }
                }
            } else {
                return Ok(());
            }
            if items.is_empty() {
                continue;
            }
            let batch = std::mem::take(&mut items);
            self.run_batch(world, &batch)?;
            items = batch;
        }
    }

    /// Propositional replay after a retraction: rebuilds `D`, the
    /// active domain, and the instance store from the retained
    /// instances alone, by a counter-based worklist. An instance fires
    /// iff all its body literals are (re)derived and all its recorded
    /// residual terms are (re)admitted to the domain; firing derives
    /// its head, which admits the head's terms.
    fn replay(&mut self, world: &mut World) -> Result<(), GroundError> {
        let cands: Vec<Inst> = std::mem::take(&mut self.insts)
            .into_iter()
            .filter(|i| self.rules[i.rule as usize].alive)
            .collect();
        self.d_set.clear();
        self.index.clear();
        self.adom.clear();
        self.adom_set.clear();
        self.queue.clear();
        self.seen.clear();
        for ix in 0..self.rules.len() {
            if !self.rules[ix].alive {
                continue;
            }
            let cs = self.rules[ix].consts.clone();
            for c in cs {
                self.adom_add_term(world, c);
            }
        }
        let mut waiters_lit: FxHashMap<GLit, Vec<usize>> = FxHashMap::default();
        let mut waiters_term: FxHashMap<GTermId, Vec<usize>> = FxHashMap::default();
        // Per candidate: (#body literals not yet derived, #residual
        // terms not yet in the domain). Bodies are already distinct
        // (canonicalised); residual terms are deduplicated at emission.
        let mut missing: Vec<(usize, usize)> = Vec::with_capacity(cands.len());
        let mut fired = vec![false; cands.len()];
        let mut ready: Vec<usize> = Vec::new();
        for (i, inst) in cands.iter().enumerate() {
            self.pool.spend(1)?;
            for &l in &inst.gr.body {
                waiters_lit.entry(l).or_default().push(i);
            }
            for &t in &inst.residual_terms {
                waiters_term.entry(t).or_default().push(i);
            }
            missing.push((inst.gr.body.len(), inst.residual_terms.len()));
            if inst.gr.body.is_empty() && inst.residual_terms.is_empty() {
                ready.push(i);
            }
        }
        // The seed-domain terms admitted above are processed through
        // the same cursor as replay-time admissions.
        let mut adom_cursor = 0usize;
        loop {
            if adom_cursor < self.adom.len() {
                let t = self.adom[adom_cursor];
                adom_cursor += 1;
                if let Some(ws) = waiters_term.get(&t) {
                    for &i in ws {
                        missing[i].1 -= 1;
                        if missing[i] == (0, 0) {
                            ready.push(i);
                        }
                    }
                }
                continue;
            }
            if let Some(l) = self.queue.pop_front() {
                if let Some(ws) = waiters_lit.get(&l) {
                    for &i in ws {
                        missing[i].0 -= 1;
                        if missing[i] == (0, 0) {
                            ready.push(i);
                        }
                    }
                }
                continue;
            }
            match ready.pop() {
                Some(i) => {
                    if !fired[i] {
                        fired[i] = true;
                        self.d_add(world, cands[i].gr.head);
                    }
                }
                None => break,
            }
        }
        for (i, inst) in cands.into_iter().enumerate() {
            if fired[i] {
                self.seen.insert((inst.rule, inst.gr.clone()));
                self.insts.push(inst);
            }
        }
        Ok(())
    }

    /// Phase 2: attacker instances, identical construction to
    /// [`crate::smart`] (blockable instances kept precise; eternal
    /// attackers collapsed to one sentinel-bodied representative per
    /// (victim, component)). Rebuilt in full every mutation, over a
    /// sorted domain copy so it matches a from-scratch grounding.
    fn attackers(&mut self, world: &mut World) -> Result<(), GroundError> {
        self.out2.clear();
        let mut sentinel: Option<GLit> = None;
        let mut eternal_seen: FxHashSet<(GLit, CompId)> = FxHashSet::default();
        let mut adom = self.adom.clone();
        adom.sort_unstable();

        for rule_ix in 0..self.rules.len() {
            if !self.rules[rule_ix].alive {
                continue;
            }
            let head = self.rules[rule_ix].head.clone();
            let victims: Vec<AtomId> = if head.is_ground() {
                let empty = Bindings::default();
                let mut args = Vec::with_capacity(head.args.len());
                for t in &head.args {
                    args.push(
                        t.intern(&mut world.terms, &empty)
                            .expect("ground head interning cannot fail"),
                    );
                }
                let atom = world.atoms.intern(head.pred, &args);
                if self.d_set.contains(&GLit::new(head.sign.flip(), atom)) {
                    vec![atom]
                } else {
                    Vec::new()
                }
            } else {
                self.index.candidates(head.pred, head.sign.flip()).to_vec()
            };
            'victims: for victim in victims {
                let mut b = Bindings::default();
                if !match_lit(world, &head, victim, &mut b) {
                    continue;
                }
                let free: Vec<Sym> = self.rules[rule_ix]
                    .vars
                    .iter()
                    .copied()
                    .filter(|v| !b.contains_key(v))
                    .collect();
                let k = free.len();
                let mut idx = vec![0usize; k];
                if k > 0 && adom.is_empty() {
                    continue;
                }
                loop {
                    for (v, &i) in free.iter().zip(idx.iter()) {
                        b.insert(*v, adom[i]);
                    }
                    self.pool.spend(1)?;
                    let cmps_ok = self.rules[rule_ix]
                        .cmps
                        .iter()
                        .all(|c| matches!(c.eval(&world.terms, &b), Ok(true)))
                        && !b.values().any(|&t| world.terms.depth(t) > self.max_depth);
                    if cmps_ok {
                        let body_lits: Vec<Literal> = self.plans[rule_ix]
                            .lits
                            .iter()
                            .map(|jl| jl.lit.clone())
                            .collect();
                        let mut body = Vec::with_capacity(body_lits.len());
                        let mut blockable = false;
                        let mut body_derivable = true;
                        for l in &body_lits {
                            let gl = Self::intern_lit(world, l, &b);
                            if self.d_set.contains(&gl.complement()) {
                                blockable = true;
                            }
                            if !self.d_set.contains(&gl) {
                                body_derivable = false;
                            }
                            body.push(gl);
                        }
                        let head_glit = GLit::new(head.sign, victim);
                        let comp = self.rules[rule_ix].comp;
                        if blockable {
                            self.out2.push(GroundRule::new(head_glit, body, comp));
                        } else if body_derivable {
                            continue 'victims;
                        } else {
                            if eternal_seen.insert((head_glit, comp)) {
                                let s = *sentinel.get_or_insert_with(|| {
                                    GLit::pos(world.ground_atom("#undef", &[]))
                                });
                                self.out2.push(GroundRule::new(head_glit, vec![s], comp));
                            }
                            continue 'victims;
                        }
                    }
                    if k == 0 {
                        break;
                    }
                    let mut p = 0;
                    loop {
                        if p == k {
                            break;
                        }
                        idx[p] += 1;
                        if idx[p] < adom.len() {
                            break;
                        }
                        idx[p] = 0;
                        p += 1;
                    }
                    if p == k {
                        break;
                    }
                }
            }
        }
        Ok(())
    }

    /// Assembles the current state into a canonical [`GroundProgram`].
    fn assemble(&self, world: &World) -> GroundProgram {
        let mut rules: Vec<GroundRule> = Vec::with_capacity(self.insts.len() + self.out2.len());
        rules.extend(self.insts.iter().map(|i| i.gr.clone()));
        rules.extend(self.out2.iter().cloned());
        GroundProgram::new(rules, self.order.clone(), world.atoms.len())
    }
}

/// The exact rule-level difference between two ground programs — what a
/// mutation through [`DeltaGrounder`] actually changed, expressed as
/// instance ids per program.
///
/// [`GroundProgram::new`] canonicalises `rules`: sorted by
/// `(comp, head, body)` and deduplicated. The programs before and after
/// a mutation are therefore two sorted sequences over the same key, and
/// the difference falls out of a single linear merge — no hashing, no
/// cloning. Retained rules keep their relative order on both sides,
/// which is what lets `FlatView::apply_delta` splice arenas instead of
/// rebuilding them.
#[derive(Debug, Clone, Default)]
pub struct GroundDelta {
    /// Indices into the *new* program's rules absent from the old one.
    pub added: Vec<u32>,
    /// Indices into the *old* program's rules absent from the new one.
    pub removed: Vec<u32>,
}

impl GroundDelta {
    /// Computes the delta between two canonicalised ground programs by
    /// one sorted merge over `(comp, head, body)`.
    pub fn between(old: &GroundProgram, new: &GroundProgram) -> Self {
        use std::cmp::Ordering;
        let mut added = Vec::new();
        let mut removed = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < old.rules.len() && j < new.rules.len() {
            let a = &old.rules[i];
            let b = &new.rules[j];
            match (a.comp, a.head, &a.body).cmp(&(b.comp, b.head, &b.body)) {
                Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
                Ordering::Less => {
                    removed.push(i as u32);
                    i += 1;
                }
                Ordering::Greater => {
                    added.push(j as u32);
                    j += 1;
                }
            }
        }
        while i < old.rules.len() {
            removed.push(i as u32);
            i += 1;
        }
        while j < new.rules.len() {
            added.push(j as u32);
            j += 1;
        }
        GroundDelta { added, removed }
    }

    /// Whether the two programs have identical rule sets.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Sorted, deduplicated indices of every atom occurring in a
    /// changed rule (head or body) — the seed set for dirty-stratum
    /// revalidation.
    pub fn touched_atoms(&self, old: &GroundProgram, new: &GroundProgram) -> Vec<usize> {
        let mut touched = Vec::new();
        {
            let mut note = |r: &GroundRule| {
                touched.push(r.head.atom().index());
                for &b in &r.body {
                    touched.push(b.atom().index());
                }
            };
            for &i in &self.removed {
                note(&old.rules[i as usize]);
            }
            for &j in &self.added {
                note(&new.rules[j as usize]);
            }
        }
        touched.sort_unstable();
        touched.dedup();
        touched
    }

    /// Restricts the delta to the view of component `c`: the added
    /// indices (into the new program) and removed indices (into the
    /// old) whose rules are visible from `c` per [`Order::in_view`].
    pub fn for_view(
        &self,
        old: &GroundProgram,
        new: &GroundProgram,
        c: CompId,
    ) -> (Vec<u32>, Vec<u32>) {
        let added = self
            .added
            .iter()
            .copied()
            .filter(|&j| new.order.in_view(c, new.rules[j as usize].comp))
            .collect();
        let removed = self
            .removed
            .iter()
            .copied()
            .filter(|&i| old.order.in_view(c, old.rules[i as usize].comp))
            .collect();
        (added, removed)
    }

    /// Whether any changed rule is visible from component `c` — the
    /// per-`CompId` invalidation test for cached arenas and models.
    pub fn affects_view(&self, old: &GroundProgram, new: &GroundProgram, c: CompId) -> bool {
        self.added
            .iter()
            .any(|&j| new.order.in_view(c, new.rules[j as usize].comp))
            || self
                .removed
                .iter()
                .any(|&i| old.order.in_view(c, old.rules[i as usize].comp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smart::ground_smart;
    use olp_parser::{parse_program, parse_rule};

    /// Asserts that `gp` equals a from-scratch smart grounding of
    /// `prog` (rendered, so differences print usefully).
    fn assert_matches_scratch(world: &mut World, prog: &OrderedProgram, gp: &GroundProgram) {
        let scratch = ground_smart(world, prog, &GroundConfig::default()).unwrap();
        assert_eq!(
            gp.render(world),
            scratch.render(world),
            "delta grounding diverged from scratch"
        );
    }

    fn setup(src: &str) -> (World, OrderedProgram, DeltaGrounder, GroundProgram) {
        let mut w = World::new();
        let p = parse_program(&mut w, src).unwrap();
        let (g, gp) = DeltaGrounder::new(&mut w, &p, &GroundConfig::default()).unwrap();
        (w, p, g, gp)
    }

    #[test]
    fn initial_grounding_matches_ground_smart() {
        for src in [
            "parent(a,b). parent(b,c).
             anc(X,Y) :- parent(X,Y).
             anc(X,Y) :- parent(X,Z), anc(Z,Y).",
            "q(a). q(b). -p(X).",
            "module c2 { a. }
             module c1 < c2 { -a :- b. }",
            "module c2 { a. b. }
             module c1 < c2 { -a :- b. -b :- a. }",
            "inflation(12). take_loan :- inflation(X), X > 11.",
            "even(zero). even(s(s(X))) :- even(X).",
        ] {
            let (mut w, p, _, gp) = setup(src);
            assert_matches_scratch(&mut w, &p, &gp);
        }
    }

    #[test]
    fn assert_fact_grounds_incrementally_and_exactly() {
        let (mut w, mut p, mut g, _) = setup(
            "parent(a,b). parent(b,c).
             anc(X,Y) :- parent(X,Y).
             anc(X,Y) :- parent(X,Z), anc(Z,Y).",
        );
        let c = p.component_by_name(w.syms.intern("main")).unwrap();
        let r = parse_rule(&mut w, "parent(c,d).").unwrap();
        let (_, gp) = g.assert_rule(&mut w, c, &r, &Budget::unlimited()).unwrap();
        p.add_rule(c, r);
        // The new edge extends the transitive closure: anc(a,d) etc.
        assert_matches_scratch(&mut w, &p, &gp);
    }

    #[test]
    fn assert_rule_with_residual_and_fresh_constant() {
        // Asserting a CWA-style non-ground fact instantiates it over
        // the whole active domain; asserting a fact with a fresh
        // constant afterwards must extend those instantiations.
        let (mut w, mut p, mut g, _) = setup("q(a). q(b).");
        let c = p.component_by_name(w.syms.intern("main")).unwrap();
        let cwa = parse_rule(&mut w, "-p(X).").unwrap();
        let (_, gp) = g
            .assert_rule(&mut w, c, &cwa, &Budget::unlimited())
            .unwrap();
        p.add_rule(c, cwa);
        assert_matches_scratch(&mut w, &p, &gp);
        let fresh = parse_rule(&mut w, "q(c).").unwrap();
        let (_, gp) = g
            .assert_rule(&mut w, c, &fresh, &Budget::unlimited())
            .unwrap();
        p.add_rule(c, fresh);
        assert_matches_scratch(&mut w, &p, &gp); // -p(c) now instantiated
    }

    #[test]
    fn retract_replays_to_scratch_fixpoint() {
        let (mut w, mut p, mut g, _) = setup(
            "parent(a,b). parent(b,c). parent(c,d).
             anc(X,Y) :- parent(X,Y).
             anc(X,Y) :- parent(X,Z), anc(Z,Y).",
        );
        let c = p.component_by_name(w.syms.intern("main")).unwrap();
        // parent(b,c) is rule index 1 in registration order.
        let gp = g.retract_rule(&mut w, 1, &Budget::unlimited()).unwrap();
        p.components[c.index()].rules.remove(1);
        // The chain is broken: anc(a,c), anc(a,d), anc(b,*) vanish.
        assert_matches_scratch(&mut w, &p, &gp);
    }

    #[test]
    fn retract_shrinks_cwa_instantiations() {
        // Retracting the only rule mentioning constant `b` must remove
        // -p(b): a stale active domain would unsoundly keep it.
        let (mut w, mut p, mut g, _) = setup("q(a). q(b). -p(X).");
        let c = p.component_by_name(w.syms.intern("main")).unwrap();
        let gp = g.retract_rule(&mut w, 1, &Budget::unlimited()).unwrap();
        p.components[c.index()].rules.remove(1);
        assert_matches_scratch(&mut w, &p, &gp);
    }

    #[test]
    fn assert_retract_roundtrip_restores_grounding() {
        let (mut w, p, mut g, gp0) = setup(
            "module c2 { a. b. }
             module c1 < c2 { -a :- b. -b :- a. }",
        );
        let c2 = p.component_by_name(w.syms.intern("c2")).unwrap();
        let r = parse_rule(&mut w, "c :- a.").unwrap();
        let (id, _) = g.assert_rule(&mut w, c2, &r, &Budget::unlimited()).unwrap();
        let gp = g.retract_rule(&mut w, id, &Budget::unlimited()).unwrap();
        assert_eq!(gp.render(&w), gp0.render(&w));
    }

    #[test]
    fn attacker_classification_tracks_mutations() {
        // Initially `-a :- b.` has an underivable body → eternal
        // sentinel. Asserting `b.` makes the body derivable → the
        // sentinel disappears in favour of the phase-1 instance.
        let (mut w, mut p, mut g, gp0) = setup(
            "module c2 { a. }
             module c1 < c2 { -a :- b. }",
        );
        assert!(gp0
            .rules
            .iter()
            .any(|r| r.body.len() == 1 && w.atom_str(r.body[0].atom()) == "#undef"));
        let c2 = p.component_by_name(w.syms.intern("c2")).unwrap();
        let b = parse_rule(&mut w, "b.").unwrap();
        let (_, gp) = g.assert_rule(&mut w, c2, &b, &Budget::unlimited()).unwrap();
        p.add_rule(c2, b);
        assert_matches_scratch(&mut w, &p, &gp);
        assert!(!gp
            .rules
            .iter()
            .any(|r| r.body.len() == 1 && w.atom_str(r.body[0].atom()) == "#undef"));
    }

    #[test]
    fn budget_trips_on_oversized_assert() {
        let (mut w, p, mut g, _) = setup("p(a). p(b). p(c).");
        let c = p.component_by_name(w.syms.intern("main")).unwrap();
        let big = parse_rule(&mut w, "q(X,Y,Z) :- p(X), p(Y), p(Z).").unwrap();
        let gov = Budget::limited(Some(5), None);
        assert!(matches!(
            g.assert_rule(&mut w, c, &big, &gov),
            Err(GroundError::Interrupted(_))
        ));
    }

    #[test]
    fn random_mutation_sequence_stays_exact() {
        // A scripted assert/retract sequence over a mixed program; the
        // fuzz suite (tests/incremental.rs) does this at scale.
        let (mut w, mut p, mut g, _) = setup(
            "module c2 { bird(tweety). fly(X) :- bird(X). }
             module c1 < c2 { penguin(opus). -fly(X) :- penguin(X). }",
        );
        let c1 = p.component_by_name(w.syms.intern("c1")).unwrap();
        let c2 = p.component_by_name(w.syms.intern("c2")).unwrap();
        let mut ids = Vec::new();
        for (comp, src) in [
            (c2, "bird(opus)."),
            (c1, "penguin(tweety)."),
            (c2, "sings(X) :- bird(X), fly(X)."),
        ] {
            let r = parse_rule(&mut w, src).unwrap();
            let (id, gp) = g
                .assert_rule(&mut w, comp, &r, &Budget::unlimited())
                .unwrap();
            p.add_rule(comp, r);
            ids.push((comp, id));
            assert_matches_scratch(&mut w, &p, &gp);
        }
        // Retract the middle assertion (penguin(tweety), first rule
        // appended to c1 → source index 2 in that component).
        let (comp, id) = ids[1];
        let gp = g.retract_rule(&mut w, id, &Budget::unlimited()).unwrap();
        let n = p.components[comp.index()].rules.len();
        p.components[comp.index()].rules.remove(n - 1);
        assert_matches_scratch(&mut w, &p, &gp);
    }

    #[test]
    fn ground_delta_is_exact_and_view_filtered() {
        let (mut w, mut p, mut g, gp0) = setup(
            "module c2 { bird(tweety). fly(X) :- bird(X). }
             module c1 < c2 { penguin(opus). }",
        );
        let c1 = p.component_by_name(w.syms.intern("c1")).unwrap();
        let c2 = p.component_by_name(w.syms.intern("c2")).unwrap();
        let r = parse_rule(&mut w, "bird(opus).").unwrap();
        let (_, gp1) = g.assert_rule(&mut w, c2, &r, &Budget::unlimited()).unwrap();
        p.add_rule(c2, r);
        let d = GroundDelta::between(&gp0, &gp1);
        assert!(!d.is_empty());
        assert!(d.removed.is_empty(), "a pure assert removes nothing");
        // Every reported index points at a rule absent from the other
        // side, and retained rules are exactly the intersection.
        assert_eq!(gp0.len() + d.added.len(), gp1.len());
        for &j in &d.added {
            assert!(!gp0.rules.contains(&gp1.rules[j as usize]));
        }
        // Atoms of the changed rules (bird(opus), fly(opus)) are
        // touched; the untouched base atoms are not.
        let touched = d.touched_atoms(&gp0, &gp1);
        for &j in &d.added {
            let r = &gp1.rules[j as usize];
            assert!(touched.contains(&r.head.atom().index()));
        }
        // The changed rules live in c2, so both views (c1 sees c2's
        // rules through the order) are affected.
        assert!(d.affects_view(&gp0, &gp1, c1));
        assert!(d.affects_view(&gp0, &gp1, c2));
        let (a1, r1) = d.for_view(&gp0, &gp1, c1);
        let (a2, r2) = d.for_view(&gp0, &gp1, c2);
        assert!(r1.is_empty() && r2.is_empty());
        assert_eq!(a1, d.added, "c1's view includes all of c2's rules");
        assert_eq!(a2, d.added);
        // A no-op delta is empty.
        assert!(GroundDelta::between(&gp1, &gp1).is_empty());
    }

    #[test]
    fn parallel_delta_matches_sequential_delta() {
        // Same mutation sequence at threads=1 and threads=4 in separate
        // worlds: identical instance sets after every step.
        let run = |threads: usize| {
            let mut w = World::new();
            let p = parse_program(
                &mut w,
                "parent(a,b). parent(b,c).
                 anc(X,Y) :- parent(X,Y).
                 anc(X,Y) :- parent(X,Z), anc(Z,Y).",
            )
            .unwrap();
            let cfg = GroundConfig {
                threads,
                ..Default::default()
            };
            let (mut g, _) = DeltaGrounder::new(&mut w, &p, &cfg).unwrap();
            let c = p.component_by_name(w.syms.intern("main")).unwrap();
            let mut renders = Vec::new();
            for src in ["parent(c,d).", "parent(d,e).", "anc2(X,Y) :- anc(X,Y)."] {
                let r = parse_rule(&mut w, src).unwrap();
                let (_, gp) = g.assert_rule(&mut w, c, &r, &Budget::unlimited()).unwrap();
                renders.push(gp.render(&w));
            }
            let gp = g.retract_rule(&mut w, 0, &Budget::unlimited()).unwrap();
            renders.push(gp.render(&w));
            renders
        };
        assert_eq!(run(1), run(4));
    }
}
