//! The smart (relevance-restricted, join-based) grounder.
//!
//! ## Why exhaustive grounding is not enough
//!
//! [`crate::ground_exhaustive`] instantiates each rule `|HU|^k` times
//! (`k` = number of variables). Real knowledge bases (the paper's
//! ancestor program over a `parent` relation, scaled taxonomies) need
//! the classical Datalog trick: only instantiate a rule when its body
//! can actually be satisfied, found by *joining* body literals against
//! what is derivable.
//!
//! ## What "derivable" means with negated heads
//!
//! Ordered programs have no negation-as-failure: a body literal `L`
//! (positive **or** negative) is true in an interpretation only if `L`
//! itself was derived by some rule. The **derivability closure** `D` is
//! the least set of signed literals closed under: if every body literal
//! of an instance is in `D` and its comparisons hold, its head is in
//! `D` — ignoring blocking/overruling entirely. `D` over-approximates
//! every *assumption-free* model (each literal of such a model is the
//! head of an applied rule whose body is again in the model, inductively
//! grounding out in facts), so instances whose bodies are not within `D`
//! can never become applicable in the semantics we compute.
//!
//! ## The eternal-attacker construction
//!
//! Overruling and defeating (Def. 2) do **not** require the attacking
//! rule to be applicable — only *non-blocked*. A rule instance is ever
//! *blockable* only if some body literal's complement is derivable; an
//! instance with no such literal is never blocked, so it attacks its
//! head-complement forever (whether or not it can ever fire). Dropping
//! it would be unsound — it could wrongly let a higher rule fire. For
//! every such **eternal attacker** we emit one representative per
//! (head, component): body `[#undef]` where `#undef` is a fresh atom no
//! rule derives or refutes — permanently undefined, hence permanently
//! non-blocked and never applicable, exactly reproducing the attack
//! (any firing potential was already captured by phase 1). Blockable
//! attacker instances are emitted as-is, so the engine can observe
//! their blocking literals precisely.
//!
//! ## Batch-synchronous closure and parallelism
//!
//! The semi-naive closure runs in batches (see [`crate::join`]): phase
//! A joins the whole frontier against a frozen derivability index —
//! read-only, so it fans out over [`GroundConfig::threads`] workers —
//! and phase B commits the matches sequentially in item order. Since
//! batch composition and commit order never depend on the thread
//! count, the ground program (including atom/term interning order) is
//! **bit-identical** for every `threads` value; the emitted instance
//! *set* is additionally invariant under join order, which is what
//! licenses the selectivity planner ([`GroundConfig::plan`]). The
//! attacker phase stays sequential: it is match-only (no joins) and
//! cheap relative to the closure. Its active-domain enumeration runs
//! over a sorted copy of the domain so that the emitted attacker set
//! depends only on the *set* of derivable literals and domain terms —
//! the delta grounder reaches the same state along a different history
//! and must produce the same phase-2 instances.
//!
//! ## Scope
//!
//! The result is sound and complete w.r.t. the exhaustive grounding for
//! the **least model `V^∞(∅)`, assumption-free models, and stable
//! models** restricted to derivable atoms (everything else in the
//! Herbrand base is undefined in those models anyway). Arbitrary models
//! of Def. 3 — which may contain unfounded "assumptions" — are outside
//! its scope; use the exhaustive grounder for those. The equivalence is
//! property-tested in `tests/smart_vs_exhaustive.rs`.

use crate::join::{compile_body, frontier_join, match_lit, BodyPlan, DIndex, Item, Rec, SpendPool};
use crate::program::{GroundProgram, GroundRule};
use crate::universe::{signature, GroundConfig, GroundError};
use olp_core::term::Bindings;
use olp_core::{
    AtomId, CompId, FxHashMap, FxHashSet, GLit, GTerm, GTermId, Literal, OrderedProgram, PredId,
    Sign, Sym, Term, World,
};
use std::collections::VecDeque;

/// A rule compiled for joining. The body literal patterns live in the
/// parallel [`BodyPlan`] vector (shared with the join engine).
struct CRule {
    comp: CompId,
    head: Literal,
    cmps: Vec<olp_core::Cmp>,
    vars: Vec<Sym>,
    /// Variables that appear in no body literal (head-only or
    /// comparison-only): they must be enumerated over the active domain.
    residual: Vec<Sym>,
}

struct Smart<'w> {
    world: &'w mut World,
    rules: Vec<CRule>,
    /// Compiled body plans, indexed like `rules`.
    plans: Vec<BodyPlan>,
    /// Derivability closure, as a set and a positional join index.
    d_set: FxHashSet<GLit>,
    index: DIndex,
    /// Active domain: ground terms occurring in derivable atoms or in
    /// the program text.
    adom: Vec<GTermId>,
    adom_set: FxHashSet<GTermId>,
    queue: VecDeque<GLit>,
    /// `(rule, body position)` pairs indexed by the (pred, sign) a new
    /// literal could drive.
    drivers: FxHashMap<(PredId, Sign), Vec<(usize, usize)>>,
    /// Rules with residual variables or empty literal bodies: re-run
    /// whenever the active domain grows.
    adom_dependent: Vec<usize>,
    out: Vec<GroundRule>,
    /// Shared instance/step meter (max_instances + governor), drawn
    /// from concurrently by phase-A workers.
    pool: SpendPool,
    /// Same depth bound as the exhaustive grounder: an instance whose
    /// variable bindings exceed it is dropped, which keeps derivations
    /// through function symbols (e.g. `even(s(s(X))) ← even(X)`)
    /// terminating and matches the exhaustive universe bound.
    max_depth: u32,
    threads: usize,
    planner: bool,
}

impl Smart<'_> {
    fn adom_add_term(&mut self, t: GTermId) {
        if self.adom_set.insert(t) {
            self.adom.push(t);
            if let GTerm::Func(_, args) = self.world.terms.get(t).clone() {
                for a in &args {
                    self.adom_add_term(*a);
                }
            }
        }
    }

    fn d_add(&mut self, l: GLit) {
        if self.d_set.insert(l) {
            self.index.add(self.world, l);
            let args = self.world.atoms.get(l.atom()).args.clone();
            for &t in &args {
                self.adom_add_term(t);
            }
            self.queue.push_back(l);
        }
    }

    fn intern_lit(&mut self, lit: &Literal, b: &Bindings) -> GLit {
        let mut args = Vec::with_capacity(lit.args.len());
        for t in &lit.args {
            args.push(
                t.intern(&mut self.world.terms, b)
                    .expect("variables bound at emission"),
            );
        }
        GLit::new(lit.sign, self.world.atoms.intern(lit.pred, &args))
    }

    /// Commits one phase-A match: enumerates residual variables over
    /// the active domain and emits each completed instance.
    fn commit(&mut self, rec: Rec) -> Result<(), GroundError> {
        let Rec { rule, mut b, body } = rec;
        let residual: Vec<Sym> = self.rules[rule]
            .residual
            .iter()
            .copied()
            .filter(|v| !b.contains_key(v))
            .collect();
        if residual.is_empty() {
            return self.emit(rule, &b, &body);
        }
        let adom = self.adom.clone();
        if adom.is_empty() {
            return Ok(());
        }
        let k = residual.len();
        let mut idx = vec![0usize; k];
        loop {
            for (v, &i) in residual.iter().zip(idx.iter()) {
                b.insert(*v, adom[i]);
            }
            self.emit(rule, &b, &body)?;
            let mut p = 0;
            loop {
                if p == k {
                    return Ok(());
                }
                idx[p] += 1;
                if idx[p] < adom.len() {
                    break;
                }
                idx[p] = 0;
                p += 1;
            }
        }
    }

    /// Emits one instance: the body ground literals are the candidates
    /// the join matched (pattern interned under `b` = matched atom), so
    /// only the head needs interning here.
    fn emit(&mut self, rule_ix: usize, b: &Bindings, body: &[GLit]) -> Result<(), GroundError> {
        self.pool.spend(1)?;
        if b.values()
            .any(|&t| self.world.terms.depth(t) > self.max_depth)
        {
            return Ok(());
        }
        for cmp in &self.rules[rule_ix].cmps {
            match cmp.eval(&self.world.terms, b) {
                Ok(true) => {}
                Ok(false) | Err(_) => return Ok(()),
            }
        }
        let head_lit = self.rules[rule_ix].head.clone();
        let head = self.intern_lit(&head_lit, b);
        let comp = self.rules[rule_ix].comp;
        self.d_add(head);
        self.out.push(GroundRule::new(head, body.to_vec(), comp));
        Ok(())
    }

    /// Phase 1: derivability closure + firing instances, as a
    /// batch-synchronous loop — collect the frontier, join it in
    /// parallel against the frozen index (phase A), commit in item
    /// order (phase B).
    fn closure(&mut self) -> Result<(), GroundError> {
        let mut last_adom = usize::MAX;
        let mut items: Vec<Item> = Vec::new();
        loop {
            items.clear();
            if self.adom.len() != last_adom {
                // (Re-)run active-domain-dependent rules (facts — which
                // also seed the closure — and rules with residual
                // variables) whenever the domain has grown.
                last_adom = self.adom.len();
                items.extend(self.adom_dependent.iter().map(|&r| Item::Seed { rule: r }));
            } else if !self.queue.is_empty() {
                while let Some(l) = self.queue.pop_front() {
                    let pred = self.world.atoms.get(l.atom()).pred;
                    if let Some(driven) = self.drivers.get(&(pred, l.sign())) {
                        items.extend(driven.iter().map(|&(rule, pos)| Item::Drive {
                            lit: l,
                            rule,
                            pos,
                        }));
                    }
                }
            } else {
                return Ok(());
            }
            if items.is_empty() {
                continue; // domain grew but nothing depends on it
            }
            let recs = frontier_join(
                self.world,
                &self.plans,
                &self.index,
                &items,
                self.threads,
                self.planner,
                &self.pool,
            )?;
            for per_item in recs {
                for rec in per_item {
                    self.commit(rec)?;
                }
            }
        }
    }

    /// Phase 2: attacker instances (real + eternal representatives).
    /// Sequential (it interns new atoms); the domain enumeration runs
    /// over a sorted copy so the result depends only on the derivable
    /// *set* (see the module docs).
    fn attackers(&mut self) -> Result<(), GroundError> {
        let mut sentinel: Option<GLit> = None;
        let mut eternal_seen: FxHashSet<(GLit, CompId)> = FxHashSet::default();
        let mut adom = self.adom.clone();
        adom.sort_unstable();

        for rule_ix in 0..self.rules.len() {
            let head = self.rules[rule_ix].head.clone();
            // Victims are derivable literals whose complement this head
            // can become: same predicate, opposite sign. Fast path for
            // ground heads (facts, ground rules): the only possible
            // victim is the head's own atom — scanning every derivable
            // complement and rejecting all but one match would make
            // fact-heavy programs quadratic.
            let victims: Vec<AtomId> = if head.is_ground() {
                let empty = Bindings::default();
                let mut args = Vec::with_capacity(head.args.len());
                for t in &head.args {
                    args.push(
                        t.intern(&mut self.world.terms, &empty)
                            .expect("ground head interning cannot fail"),
                    );
                }
                let atom = self.world.atoms.intern(head.pred, &args);
                if self.d_set.contains(&GLit::new(head.sign.flip(), atom)) {
                    vec![atom]
                } else {
                    Vec::new()
                }
            } else {
                self.index.candidates(head.pred, head.sign.flip()).to_vec()
            };
            'victims: for victim in victims {
                let mut b = Bindings::default();
                if !match_lit(self.world, &head, victim, &mut b) {
                    continue;
                }
                // Enumerate all remaining variables over the active
                // domain; classify each instance.
                let free: Vec<Sym> = self.rules[rule_ix]
                    .vars
                    .iter()
                    .copied()
                    .filter(|v| !b.contains_key(v))
                    .collect();
                let k = free.len();
                let mut idx = vec![0usize; k];
                if k > 0 && adom.is_empty() {
                    continue;
                }
                loop {
                    for (v, &i) in free.iter().zip(idx.iter()) {
                        b.insert(*v, adom[i]);
                    }
                    self.pool.spend(1)?;
                    // Comparisons must hold (and bindings must respect
                    // the depth bound) for the instance to exist.
                    let cmps_ok = self.rules[rule_ix]
                        .cmps
                        .iter()
                        .all(|c| matches!(c.eval(&self.world.terms, &b), Ok(true)))
                        && !b
                            .values()
                            .any(|&t| self.world.terms.depth(t) > self.max_depth);
                    if cmps_ok {
                        // Classify. The instance can ever be *blocked*
                        // iff some body literal's complement is
                        // derivable. Blockable instances must be kept
                        // precise; an unblockable one is an **eternal
                        // attacker** — it suppresses this victim in
                        // every interpretation within scope — so a
                        // single sentinel-bodied representative
                        // suffices (its potential firings were already
                        // emitted by phase 1).
                        let body_lits: Vec<Literal> = self.plans[rule_ix]
                            .lits
                            .iter()
                            .map(|jl| jl.lit.clone())
                            .collect();
                        let mut body = Vec::with_capacity(body_lits.len());
                        let mut blockable = false;
                        let mut body_derivable = true;
                        for l in &body_lits {
                            let gl = self.intern_lit(l, &b);
                            if self.d_set.contains(&gl.complement()) {
                                blockable = true;
                            }
                            if !self.d_set.contains(&gl) {
                                body_derivable = false;
                            }
                            body.push(gl);
                        }
                        // The victim match binds every head variable, so
                        // the instance head is exactly the complement of
                        // the victim literal: same atom, the rule head's
                        // sign.
                        let head_glit = GLit::new(head.sign, victim);
                        let comp = self.rules[rule_ix].comp;
                        if blockable {
                            self.out.push(GroundRule::new(head_glit, body, comp));
                        } else if body_derivable {
                            // Unblockable *and* fully derivable: the
                            // phase-1 firing instance is already present
                            // and is itself a permanently non-blocked
                            // attacker — nothing to add, and it
                            // dominates every other instance against
                            // this victim.
                            continue 'victims;
                        } else {
                            if eternal_seen.insert((head_glit, comp)) {
                                let s = *sentinel.get_or_insert_with(|| {
                                    GLit::pos(self.world.ground_atom("#undef", &[]))
                                });
                                self.out.push(GroundRule::new(head_glit, vec![s], comp));
                            }
                            // An eternal attacker dominates every other
                            // instance of this rule against this victim.
                            continue 'victims;
                        }
                    }
                    // Advance the counter.
                    if k == 0 {
                        break;
                    }
                    let mut p = 0;
                    loop {
                        if p == k {
                            break;
                        }
                        idx[p] += 1;
                        if idx[p] < adom.len() {
                            break;
                        }
                        idx[p] = 0;
                        p += 1;
                    }
                    if p == k {
                        break;
                    }
                }
            }
        }
        Ok(())
    }
}

/// Grounds an ordered program with the relevance-restricted strategy.
///
/// See the module documentation for the exact scope of equivalence with
/// [`crate::ground_exhaustive`].
pub fn ground_smart(
    world: &mut World,
    prog: &OrderedProgram,
    cfg: &GroundConfig,
) -> Result<GroundProgram, GroundError> {
    ground_smart_seeded(world, prog, cfg, &[])
}

/// [`ground_smart`] with extra ground terms seeded into the active
/// domain. Needed when `prog` is a *fragment* of a larger program (see
/// [`crate::demand`]): attacker instances quantify over the Herbrand
/// universe, so constants that only occur in dropped rules still
/// enlarge the space of never-blockable attackers and must be retained
/// for the semantics of the fragment to match the whole.
pub fn ground_smart_seeded(
    world: &mut World,
    prog: &OrderedProgram,
    cfg: &GroundConfig,
    domain_seed: &[GTermId],
) -> Result<GroundProgram, GroundError> {
    let order = prog.order()?;
    let sig = signature(world, prog);
    let mut rules = Vec::new();
    let mut plans = Vec::new();
    for (comp, rule) in prog.rules() {
        let vars = rule.vars();
        let lits: Vec<Literal> = rule.body_lits().cloned().collect();
        let cmps: Vec<olp_core::Cmp> = rule.body_cmps().cloned().collect();
        let mut body_vars = Vec::new();
        for l in &lits {
            l.collect_vars(&mut body_vars);
        }
        let residual: Vec<Sym> = vars
            .iter()
            .copied()
            .filter(|v| !body_vars.contains(v))
            .collect();
        plans.push(compile_body(world, &lits));
        rules.push(CRule {
            comp,
            head: rule.head.clone(),
            cmps,
            vars,
            residual,
        });
    }

    let mut drivers: FxHashMap<(PredId, Sign), Vec<(usize, usize)>> = FxHashMap::default();
    let mut adom_dependent = Vec::new();
    for (ix, (r, plan)) in rules.iter().zip(plans.iter()).enumerate() {
        for (pos, jl) in plan.lits.iter().enumerate() {
            drivers
                .entry((jl.lit.pred, jl.lit.sign))
                .or_default()
                .push((ix, pos));
        }
        if plan.lits.is_empty() || !r.residual.is_empty() {
            adom_dependent.push(ix);
        }
    }

    let mut s = Smart {
        world,
        rules,
        plans,
        d_set: FxHashSet::default(),
        index: DIndex::default(),
        adom: Vec::new(),
        adom_set: FxHashSet::default(),
        queue: VecDeque::new(),
        drivers,
        adom_dependent,
        out: Vec::new(),
        pool: SpendPool::new(cfg.max_instances, cfg.budget.clone()),
        max_depth: cfg.max_depth,
        threads: cfg.threads.max(1),
        planner: cfg.plan,
    };
    // Counting-domain seeds: distinct ground-fact heads per
    // (pred, sign), counted over the program text and handed to the
    // join planner as statistics priors for predicates it has not
    // measured yet (see `DIndex::seed`). Counted structurally so no
    // atoms are interned before grounding proper begins.
    let mut fact_heads: FxHashSet<(PredId, Sign, Vec<Term>)> = FxHashSet::default();
    for (_, rule) in prog.rules() {
        if rule.head.is_ground()
            && rule.body_lits().next().is_none()
            && rule.body_cmps().next().is_none()
        {
            fact_heads.insert((rule.head.pred, rule.head.sign, rule.head.args.clone()));
        }
    }
    let mut fact_counts: FxHashMap<(PredId, Sign), u64> = FxHashMap::default();
    for (pred, sign, _) in &fact_heads {
        *fact_counts.entry((*pred, *sign)).or_insert(0) += 1;
    }
    for ((pred, sign), n) in fact_counts {
        s.index.seed(pred, sign, n);
    }
    for &c in &sig.constants {
        s.adom_add_term(c);
    }
    for &c in domain_seed {
        s.adom_add_term(c);
    }
    s.closure()?;
    s.attackers()?;
    let n_atoms = s.world.atoms.len();
    let out = s.out;
    Ok(GroundProgram::new(out, order, n_atoms))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::ground_exhaustive;
    use olp_parser::{parse_ground_literal, parse_program};

    fn smart(src: &str) -> (World, GroundProgram) {
        let mut w = World::new();
        let p = parse_program(&mut w, src).unwrap();
        let g = ground_smart(&mut w, &p, &GroundConfig::default()).unwrap();
        (w, g)
    }

    #[test]
    fn facts_and_joins() {
        let (mut w, g) = smart(
            "parent(a,b). parent(b,c).
             anc(X,Y) :- parent(X,Y).
             anc(X,Y) :- parent(X,Z), anc(Z,Y).",
        );
        let ac = parse_ground_literal(&mut w, "anc(a,c)").unwrap();
        assert!(g.rules.iter().any(|r| r.head == ac));
        // No instance for anc(c, a): not derivable.
        let ca = parse_ground_literal(&mut w, "anc(c,a)").unwrap();
        assert!(!g.rules.iter().any(|r| r.head == ca));
    }

    #[test]
    fn smart_is_smaller_than_exhaustive_on_ancestor() {
        let src = "parent(a,b). parent(b,c). parent(c,d).
             anc(X,Y) :- parent(X,Y).
             anc(X,Y) :- parent(X,Z), anc(Z,Y).";
        let mut w1 = World::new();
        let p1 = parse_program(&mut w1, src).unwrap();
        let ge = ground_exhaustive(&mut w1, &p1, &GroundConfig::default()).unwrap();
        let (_, gs) = smart(src);
        assert!(
            gs.len() < ge.len(),
            "smart {} < exhaustive {}",
            gs.len(),
            ge.len()
        );
    }

    #[test]
    fn negative_literals_join_too() {
        // -q(a) is derivable; p(a) should fire through the negative
        // body literal.
        let (mut w, g) = smart("-q(a). p(X) :- -q(X).");
        let pa = parse_ground_literal(&mut w, "p(a)").unwrap();
        assert!(g.rules.iter().any(|r| r.head == pa));
    }

    #[test]
    fn eternal_attacker_emitted_for_underivable_body() {
        // `a.` in upper c2; `-a :- b.` in lower c1 where b is never
        // derivable: the attack must survive grounding (a is then never
        // derivable in c1's view — checked at the semantics level; here
        // we check the instance exists with the sentinel body).
        let (w, g) = smart(
            "module c2 { a. }
             module c1 < c2 { -a :- b. }",
        );
        let eternal = g
            .rules
            .iter()
            .find(|r| !r.head.is_pos() && r.body.len() == 1)
            .expect("eternal attacker present");
        assert_eq!(w.atom_str(eternal.body[0].atom()), "#undef");
    }

    #[test]
    fn blockable_attacker_kept_precise() {
        // -b is derivable (via `-b :- a`), so the attacker `-a :- b`
        // can be blocked and must be emitted with its real body; no
        // sentinel collapse.
        let (mut w, g) = smart(
            "module c2 { a. b. }
             module c1 < c2 { -a :- b. -b :- a. }",
        );
        let b_lit = parse_ground_literal(&mut w, "b").unwrap();
        assert!(g
            .rules
            .iter()
            .any(|r| !r.head.is_pos() && r.body.as_ref() == [b_lit]));
        assert!(w.syms.get("#undef").is_none());
    }

    #[test]
    fn unblockable_derivable_attacker_needs_no_sentinel() {
        // `-a :- b` with b derivable but -b NOT derivable: the attacker
        // is unblockable, but its phase-1 firing instance is already a
        // permanently non-blocked attacker — no sentinel is emitted.
        let (mut w, g) = smart(
            "module c2 { a. b. }
             module c1 < c2 { -a :- b. }",
        );
        let b_lit = parse_ground_literal(&mut w, "b").unwrap();
        let na = parse_ground_literal(&mut w, "-a").unwrap();
        assert!(g
            .rules
            .iter()
            .any(|r| r.head == na && r.body.as_ref() == [b_lit]));
        assert!(w.syms.get("#undef").is_none());
    }

    #[test]
    fn cwa_style_nonground_facts_instantiate_over_adom() {
        let (_, g) = smart("q(a). q(b). -p(X).");
        assert_eq!(
            g.rules.iter().filter(|r| !r.head.is_pos()).count(),
            2,
            "-p(a) and -p(b)"
        );
    }

    #[test]
    fn comparisons_respected() {
        let (mut w, g) = smart("inflation(12). take_loan :- inflation(X), X > 11.");
        let tl = parse_ground_literal(&mut w, "take_loan").unwrap();
        assert!(g.rules.iter().any(|r| r.head == tl));
        let (mut w2, g2) = smart("inflation(10). take_loan :- inflation(X), X > 11.");
        let tl2 = parse_ground_literal(&mut w2, "take_loan").unwrap();
        assert!(!g2.rules.iter().any(|r| r.head == tl2));
    }

    #[test]
    fn budget_enforced() {
        let mut w = World::new();
        let p = parse_program(&mut w, "p(a). p(b). p(c). q(X,Y,Z) :- p(X), p(Y), p(Z).").unwrap();
        let cfg = GroundConfig {
            max_instances: 5,
            ..Default::default()
        };
        assert!(matches!(
            ground_smart(&mut w, &p, &cfg),
            Err(GroundError::TooManyInstances(5))
        ));
    }

    #[test]
    fn function_symbols_through_derivation_terminate_at_depth_bound() {
        // Recursion through a function symbol: the closure grows the
        // active domain with derived terms and is cut off by the same
        // depth bound the exhaustive grounder uses (default 2), so the
        // fixpoint terminates instead of unfolding s(s(…)) forever.
        let (mut w, g) = smart("even(zero). even(s(s(X))) :- even(X).");
        let e2 = parse_ground_literal(&mut w, "even(s(s(zero)))").unwrap();
        assert!(g.rules.iter().any(|r| r.head == e2));
        // Depth 4 heads exist (binding X = s(s(zero)) has depth 2, at
        // the bound); depth 6 heads do not (X would need depth 4).
        let e4 = parse_ground_literal(&mut w, "even(s(s(s(s(zero)))))").unwrap();
        assert!(g.rules.iter().any(|r| r.head == e4));
        let e6 = parse_ground_literal(&mut w, "even(s(s(s(s(s(s(zero)))))))").unwrap();
        assert!(!g.rules.iter().any(|r| r.head == e6));
    }

    #[test]
    fn thread_counts_give_bitwise_identical_programs() {
        let src = "parent(a,b). parent(b,c). parent(c,d). parent(d,e).
             anc(X,Y) :- parent(X,Y).
             anc(X,Y) :- parent(X,Z), anc(Z,Y).
             module low < main { -anc(X,X) :- anc(X,Y). }";
        let ground_at = |threads: usize| {
            let mut w = World::new();
            let p = parse_program(&mut w, src).unwrap();
            let cfg = GroundConfig {
                threads,
                ..Default::default()
            };
            let g = ground_smart(&mut w, &p, &cfg).unwrap();
            let rendered = g.render(&w);
            (g, rendered)
        };
        let (g1, r1) = ground_at(1);
        for t in [2, 8] {
            let (gt, rt) = ground_at(t);
            assert_eq!(g1.rules, gt.rules, "threads=1 vs threads={t} instances");
            assert_eq!(r1, rt, "threads=1 vs threads={t} rendering");
        }
    }

    #[test]
    fn planner_off_gives_same_instance_set() {
        let src = "parent(a,b). parent(b,c). parent(c,d).
             anc(X,Y) :- parent(X,Y).
             anc(X,Y) :- parent(X,Z), anc(Z,Y).
             q(a). q(b). -p(X).";
        let ground_with = |plan: bool| {
            let mut w = World::new();
            let p = parse_program(&mut w, src).unwrap();
            let cfg = GroundConfig {
                plan,
                ..Default::default()
            };
            let g = ground_smart(&mut w, &p, &cfg).unwrap();
            let rendered = g.render(&w);
            let mut lines: Vec<String> = rendered.lines().map(str::to_owned).collect();
            lines.sort();
            lines
        };
        assert_eq!(ground_with(true), ground_with(false));
    }
}
