//! Shared join machinery for the smart and delta grounders: compiled
//! body plans, the per-argument-position derivability index, the greedy
//! selectivity-driven join planner, and the batch-parallel frontier
//! phase of the bulk-synchronous grounding loop.
//!
//! ## The bulk-synchronous split
//!
//! The semi-naive closure alternates two kinds of work: *matching* body
//! literals against the derivability index (pure reads of the [`World`]
//! and the index) and *committing* emissions (interning new head atoms,
//! growing `D`, the active domain and the frontier queue — all
//! mutations). Both grounders therefore process the frontier in
//! batches: phase A joins every work item of the batch against a frozen
//! snapshot and records the complete matches; phase B replays the
//! records sequentially in item order and performs the mutations.
//!
//! Phase A touches no mutable state, so it can fan out over worker
//! threads — and because phase B commits in the fixed (item, match)
//! order that a single-threaded phase A produces too, the resulting
//! ground program is **bit-identical for every thread count**: the same
//! instances, interned in the same order, yielding the same atom ids.
//!
//! ## The join planner
//!
//! Body literals are joined in estimated-cost order instead of textual
//! order: at every join step the planner estimates, for each remaining
//! literal, how many matches scanning it would produce — from the real
//! per-(predicate, sign) statistics the [`DIndex`] accumulates during
//! grounding (candidate cardinality, exact filtered-list lengths for
//! bound argument keys, and per-position distinct-value counts as
//! independence-assumption divisors) — and picks the cheapest. Bound
//! positions are served from the per-(predicate, sign, position) term
//! index, which shrinks the candidate list from "every derivable atom
//! of the predicate" to "every derivable atom with this term at this
//! position". Join order never changes the *set* of complete matches —
//! only how many partial bindings are attempted on the way. The same
//! statistics are exported post-grounding as
//! [`crate::flat::ProgramStats`] for `olp check` / REPL inspection.

use crate::universe::GroundError;
use olp_core::term::Bindings;
use olp_core::{AtomId, Budget, FxHashMap, GLit, GTermId, Literal, PredId, Sign, Sym, Term, World};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// How a body-literal argument can key into the positional index.
#[derive(Debug, Clone)]
pub(crate) enum ArgKey {
    /// Fully ground argument, interned once at rule-compile time.
    Ground(GTermId),
    /// A plain variable: indexable as soon as a join binds it.
    Var(Sym),
    /// Compound pattern containing variables: not indexable.
    Open,
}

/// A body literal compiled for planned joining.
#[derive(Debug)]
pub(crate) struct JLit {
    /// The literal pattern.
    pub lit: Literal,
    /// One [`ArgKey`] per argument position.
    pub keys: Vec<ArgKey>,
    /// The variables occurring in the pattern.
    pub vars: Vec<Sym>,
}

/// The compiled body of one rule (literal patterns only; comparisons
/// stay with the owning grounder, which evaluates them at emission).
#[derive(Debug, Default)]
pub(crate) struct BodyPlan {
    /// Body literals in textual order.
    pub lits: Vec<JLit>,
}

/// Compiles body literals into a [`BodyPlan`], interning the ground
/// arguments so the planner can use them as index keys without
/// touching the (then frozen) world during joins.
pub(crate) fn compile_body(world: &mut World, lits: &[Literal]) -> BodyPlan {
    let empty = Bindings::default();
    let compiled = lits
        .iter()
        .map(|l| {
            let keys = l
                .args
                .iter()
                .map(|t| match t {
                    Term::Var(v) => ArgKey::Var(*v),
                    t if t.is_ground() => ArgKey::Ground(
                        t.intern(&mut world.terms, &empty)
                            .expect("ground argument interning cannot fail"),
                    ),
                    _ => ArgKey::Open,
                })
                .collect();
            let mut vars = Vec::new();
            l.collect_vars(&mut vars);
            JLit {
                lit: l.clone(),
                keys,
                vars,
            }
        })
        .collect();
    BodyPlan { lits: compiled }
}

/// Per-(predicate, sign) slice of the derivability closure.
#[derive(Debug, Default)]
pub(crate) struct PredIndex {
    /// Every derivable atom of the predicate, in derivation order.
    pub atoms: Vec<AtomId>,
    /// Per argument position: term → atoms carrying it there.
    pub pos: Vec<FxHashMap<GTermId, Vec<AtomId>>>,
}

/// The derivability closure `D` as a join index: candidate lists per
/// (predicate, sign) plus per-argument-position term lists for the
/// planner. The owning grounder deduplicates via its `d_set` before
/// calling [`DIndex::add`].
#[derive(Debug, Default)]
pub(crate) struct DIndex {
    by: FxHashMap<(PredId, Sign), PredIndex>,
    /// Static cardinality seeds from the counting abstract domain
    /// (distinct ground-fact heads per (pred, sign), counted over the
    /// AST before grounding). They stand in for measured statistics
    /// while a predicate has no indexed atoms yet: the planner uses
    /// the seed as that position's match estimate, so it prefers
    /// provably-empty predicates (seed 0 ⇒ immediate prune) over ones
    /// whose facts merely have not been committed yet. As soon as the
    /// first atom of a (pred, sign) is indexed, measured statistics
    /// take over and the seed is ignored.
    seeds: FxHashMap<(PredId, Sign), u64>,
}

impl DIndex {
    /// Indexes a (deduplicated) derivable literal.
    pub fn add(&mut self, world: &World, l: GLit) {
        let atom = world.atoms.get(l.atom());
        let e = self.by.entry((atom.pred, l.sign())).or_default();
        if e.pos.len() < atom.args.len() {
            e.pos.resize_with(atom.args.len(), FxHashMap::default);
        }
        for (i, &t) in atom.args.iter().enumerate() {
            e.pos[i].entry(t).or_default().push(l.atom());
        }
        e.atoms.push(l.atom());
    }

    /// The index slice for `(pred, sign)`, if any literal was added.
    pub fn get(&self, pred: PredId, sign: Sign) -> Option<&PredIndex> {
        self.by.get(&(pred, sign))
    }

    /// The plain candidate list for `(pred, sign)` (no positional
    /// filtering) — what the unplanned join iterates.
    pub fn candidates(&self, pred: PredId, sign: Sign) -> &[AtomId] {
        self.get(pred, sign).map_or(&[], |p| p.atoms.as_slice())
    }

    /// Adds `n` to the static cardinality seed of `(pred, sign)`.
    pub fn seed(&mut self, pred: PredId, sign: Sign, n: u64) {
        *self.seeds.entry((pred, sign)).or_insert(0) += n;
    }

    /// The static cardinality seed for `(pred, sign)` (0 if unseeded).
    pub fn seed_bound(&self, pred: PredId, sign: Sign) -> u64 {
        self.seeds.get(&(pred, sign)).copied().unwrap_or(0)
    }

    /// Drops every measured entry (used by the delta grounder's
    /// replay). Seeds are program-text facts, not grounding state, so
    /// they survive: the replayed closure starts from the same priors.
    pub fn clear(&mut self) {
        self.by.clear();
    }
}

/// Shared instantiation meter: the `max_instances` pool as an atomic
/// (so phase-A workers can draw from it concurrently) plus the step
/// governor. Exhaustion of either aborts the grounding.
#[derive(Debug)]
pub(crate) struct SpendPool {
    remaining: AtomicUsize,
    max: usize,
    gov: Budget,
}

impl SpendPool {
    pub fn new(max: usize, gov: Budget) -> Self {
        SpendPool {
            remaining: AtomicUsize::new(max),
            max,
            gov,
        }
    }

    /// Draws `n` attempts from the pool and charges the governor.
    pub fn spend(&self, n: usize) -> Result<(), GroundError> {
        if self
            .remaining
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |r| r.checked_sub(n))
            .is_err()
        {
            return Err(GroundError::TooManyInstances(self.max));
        }
        self.gov.charge(n as u64)?;
        Ok(())
    }
}

/// Amortised per-worker front-end to a [`SpendPool`]: counts locally
/// and settles in batches, so concurrent workers do not contend on the
/// shared atomics per candidate. Exhaustion is detected at batch
/// granularity (the attempt count may overshoot by up to one batch).
pub(crate) struct LocalSpend<'a> {
    pool: &'a SpendPool,
    pending: usize,
}

const SPEND_BATCH: usize = 1024;

impl<'a> LocalSpend<'a> {
    pub fn new(pool: &'a SpendPool) -> Self {
        LocalSpend { pool, pending: 0 }
    }

    #[inline]
    pub fn spend(&mut self, n: usize) -> Result<(), GroundError> {
        self.pending += n;
        if self.pending >= SPEND_BATCH {
            self.flush()?;
        }
        Ok(())
    }

    pub fn flush(&mut self) -> Result<(), GroundError> {
        let n = std::mem::take(&mut self.pending);
        if n > 0 {
            self.pool.spend(n)?;
        }
        Ok(())
    }
}

/// A complete body match found in phase A, ready for the sequential
/// commit: the rule, the bindings accumulated by the join, and the
/// matched body literals in textual order.
#[derive(Debug)]
pub(crate) struct Rec {
    pub rule: usize,
    pub b: Bindings,
    pub body: Vec<GLit>,
}

/// One unit of phase-A work.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Item {
    /// Join a freshly derived frontier literal into body position `pos`
    /// of rule `rule` (semi-naive driving).
    Drive { lit: GLit, rule: usize, pos: usize },
    /// Join every body position of `rule` from scratch (facts,
    /// active-domain re-runs, and delta-grounder seed joins).
    Seed { rule: usize },
}

/// Matches a literal pattern against a ground atom, extending `b`.
pub(crate) fn match_lit(world: &World, lit: &Literal, atom: AtomId, b: &mut Bindings) -> bool {
    let args = &world.atoms.get(atom).args;
    debug_assert_eq!(args.len(), lit.args.len());
    lit.args
        .iter()
        .zip(args.iter())
        .all(|(pat, &g)| pat.match_ground(g, &world.terms, b))
}

/// Picks the next body position to join, driven by the real statistics
/// the index accumulated during grounding. For every remaining position
/// the planner estimates its match count: the scanned candidate list is
/// the shortest single-bound-key filtered list (its length is an
/// *exact* match bound for that key), and every further bound key
/// divides the estimate by its position's distinct-value count — the
/// classic independence assumption, computed in `u128` cross products
/// so no floats enter the engine. Smallest estimate wins; ties break by
/// smaller scanned list, then by textual position. Every input is
/// frozen for the batch, so the choice is deterministic. With the
/// planner off: the textually first remaining position over the full
/// candidate list — the pre-planner behaviour, kept as an ablation
/// baseline.
fn choose<'a>(
    plan: &BodyPlan,
    index: &'a DIndex,
    remaining: &[usize],
    b: &Bindings,
    planner: bool,
) -> (usize, &'a [AtomId]) {
    if !planner {
        let (i, &pos) = remaining
            .iter()
            .enumerate()
            .min_by_key(|&(_, &p)| p)
            .expect("remaining nonempty");
        let jl = &plan.lits[pos];
        return (i, index.candidates(jl.lit.pred, jl.lit.sign));
    }
    // est = num / den estimated matches; compared as cross products.
    struct Best<'a> {
        num: u128,
        den: u128,
        len: usize,
        pos: usize,
        idx: usize,
        cand: &'a [AtomId],
    }
    let mut best: Option<Best<'_>> = None;
    for (i, &pos) in remaining.iter().enumerate() {
        let jl = &plan.lits[pos];
        let (num, den, cand): (u128, u128, &[AtomId]) = match index.get(jl.lit.pred, jl.lit.sign) {
            // No measured statistics for the predicate yet: fall back
            // to the static cardinality seed. A seed of 0 means the
            // predicate is provably empty — choosing it first prunes
            // the whole subtree immediately; a positive seed defers
            // the position behind cheaper measured ones (the scan is
            // still free either way, since the candidate list is
            // empty until the facts commit).
            None => (
                u128::from(index.seed_bound(jl.lit.pred, jl.lit.sign)),
                1,
                &[],
            ),
            Some(p) => {
                let mut cand: &[AtomId] = &p.atoms;
                let mut scan_ai: Option<usize> = None;
                let mut bound: Vec<(usize, usize)> = Vec::new(); // (ai, distinct)
                for (ai, key) in jl.keys.iter().enumerate() {
                    let t = match key {
                        ArgKey::Ground(t) => Some(*t),
                        ArgKey::Var(v) => b.get(v).copied(),
                        ArgKey::Open => None,
                    };
                    if let Some(t) = t {
                        let list = p
                            .pos
                            .get(ai)
                            .and_then(|m| m.get(&t))
                            .map_or(&[][..], std::vec::Vec::as_slice);
                        if list.len() < cand.len() {
                            cand = list;
                            scan_ai = Some(ai);
                        }
                        let distinct = p.pos.get(ai).map_or(1, FxHashMap::len).max(1);
                        bound.push((ai, distinct));
                    }
                }
                // The scanned key's selectivity is already exact in
                // `cand.len()`; the remaining bound keys contribute
                // their distinct-count divisors.
                let mut den: u128 = 1;
                for &(ai, d) in &bound {
                    if Some(ai) != scan_ai {
                        den = den.saturating_mul(d as u128);
                    }
                }
                (cand.len() as u128, den, cand)
            }
        };
        let better = match &best {
            None => true,
            Some(b) => {
                let (lhs, rhs) = (num.saturating_mul(b.den), b.num.saturating_mul(den));
                lhs < rhs
                    || (lhs == rhs && (cand.len() < b.len || (cand.len() == b.len && pos < b.pos)))
            }
        };
        if better {
            best = Some(Best {
                num,
                den,
                len: cand.len(),
                pos,
                idx: i,
                cand,
            });
        }
    }
    let best = best.expect("remaining nonempty");
    (best.idx, best.cand)
}

/// Recursive planned join over the remaining body positions; pushes a
/// [`Rec`] per complete match. Read-only apart from the caller-owned
/// scratch (`remaining`, `b`, `body`) and the output buffer.
#[allow(clippy::too_many_arguments)]
fn join_rec(
    world: &World,
    plan: &BodyPlan,
    index: &DIndex,
    planner: bool,
    rule: usize,
    remaining: &mut Vec<usize>,
    b: &mut Bindings,
    body: &mut [Option<GLit>],
    spend: &mut LocalSpend<'_>,
    out: &mut Vec<Rec>,
) -> Result<(), GroundError> {
    if remaining.is_empty() {
        out.push(Rec {
            rule,
            b: b.clone(),
            body: body
                .iter()
                .map(|g| g.expect("all positions matched"))
                .collect(),
        });
        return Ok(());
    }
    let (idx, cand) = choose(plan, index, remaining, b, planner);
    let pos = remaining.swap_remove(idx);
    let jl = &plan.lits[pos];
    for &c in cand {
        spend.spend(1)?;
        let preexisting: Vec<Sym> = jl
            .vars
            .iter()
            .copied()
            .filter(|v| b.contains_key(v))
            .collect();
        if match_lit(world, &jl.lit, c, b) {
            body[pos] = Some(GLit::new(jl.lit.sign, c));
            join_rec(
                world, plan, index, planner, rule, remaining, b, body, spend, out,
            )?;
            body[pos] = None;
        }
        for v in &jl.vars {
            if !preexisting.contains(v) {
                b.remove(v);
            }
        }
    }
    remaining.push(pos);
    Ok(())
}

/// Runs one work item to completion, returning its matches in
/// deterministic join order.
fn run_item(
    world: &World,
    plans: &[BodyPlan],
    index: &DIndex,
    planner: bool,
    pool: &SpendPool,
    item: &Item,
) -> Result<Vec<Rec>, GroundError> {
    let mut out = Vec::new();
    let mut ls = LocalSpend::new(pool);
    match *item {
        Item::Drive { lit, rule, pos } => {
            let plan = &plans[rule];
            let jl = &plan.lits[pos];
            let mut b = Bindings::default();
            if match_lit(world, &jl.lit, lit.atom(), &mut b) {
                let n = plan.lits.len();
                let mut body: Vec<Option<GLit>> = vec![None; n];
                body[pos] = Some(lit);
                let mut remaining: Vec<usize> = (0..n).filter(|&p| p != pos).collect();
                join_rec(
                    world,
                    plan,
                    index,
                    planner,
                    rule,
                    &mut remaining,
                    &mut b,
                    &mut body,
                    &mut ls,
                    &mut out,
                )?;
            }
        }
        Item::Seed { rule } => {
            let plan = &plans[rule];
            let n = plan.lits.len();
            let mut b = Bindings::default();
            let mut body: Vec<Option<GLit>> = vec![None; n];
            let mut remaining: Vec<usize> = (0..n).collect();
            join_rec(
                world,
                plan,
                index,
                planner,
                rule,
                &mut remaining,
                &mut b,
                &mut body,
                &mut ls,
                &mut out,
            )?;
        }
    }
    ls.flush()?;
    Ok(out)
}

/// Minimum batch size worth fanning out: below this the spawn cost of
/// the scoped workers exceeds the join work.
const PAR_THRESHOLD: usize = 8;

/// Phase A of one frontier batch: joins every item against the frozen
/// index and returns per-item match lists in item order. Fans out over
/// `threads` scoped workers when the batch is large enough; the
/// `threads <= 1` path runs the identical join code inline, so results
/// are bit-for-bit independent of the thread count. A budget trip on
/// any worker stops the whole batch at the next item boundary (workers
/// inside a long item observe it through the shared governor).
pub(crate) fn frontier_join(
    world: &World,
    plans: &[BodyPlan],
    index: &DIndex,
    items: &[Item],
    threads: usize,
    planner: bool,
    pool: &SpendPool,
) -> Result<Vec<Vec<Rec>>, GroundError> {
    if threads <= 1 || items.len() < PAR_THRESHOLD {
        let mut out = Vec::with_capacity(items.len());
        for it in items {
            out.push(run_item(world, plans, index, planner, pool, it)?);
        }
        return Ok(out);
    }
    type ItemSlot = Mutex<Option<Result<Vec<Rec>, GroundError>>>;
    let workers = threads.min(items.len());
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let slots: Vec<ItemSlot> = items.iter().map(|_| Mutex::new(None)).collect();
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            let (next, stop, slots) = (&next, &stop, &slots);
            scope.spawn(move |_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() || stop.load(Ordering::Relaxed) {
                    return;
                }
                let r = run_item(world, plans, index, planner, pool, &items[i]);
                if r.is_err() {
                    stop.store(true, Ordering::Relaxed);
                }
                *slots[i].lock().expect("slot") = Some(r);
            });
        }
    })
    .expect("scope");
    let results: Vec<Option<Result<Vec<Rec>, GroundError>>> = slots
        .into_iter()
        .map(|s| s.into_inner().expect("slot"))
        .collect();
    if let Some(e) = results.iter().find_map(|r| match r {
        Some(Err(e)) => Some(e.clone()),
        _ => None,
    }) {
        return Err(e);
    }
    Ok(results
        .into_iter()
        .map(|r| match r {
            Some(Ok(v)) => v,
            _ => unreachable!("item skipped without a recorded error"),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use olp_core::Term;

    #[test]
    fn planner_consults_seeds_before_measured_stats() {
        let mut world = World::new();
        let p = world.pred("p", 1);
        let q = world.pred("q", 1);
        let x = world.syms.intern("X");
        let body = vec![
            Literal::pos(p, vec![Term::Var(x)]),
            Literal::pos(q, vec![Term::Var(x)]),
        ];
        let plan = compile_body(&mut world, &body);
        let mut index = DIndex::default();
        // Three measured q atoms; p has nothing derivable yet.
        for name in ["a", "b", "c"] {
            let s = world.syms.intern(name);
            let t = world.terms.constant(s);
            let atom = world.atoms.intern(q, &[t]);
            index.add(&world, GLit::pos(atom));
        }
        let b = Bindings::default();
        // Unseeded: the p position (no stats ⇒ estimate 0) is chosen
        // first — a free prune of the whole subtree.
        let (_, cand) = choose(&plan, &index, &[0, 1], &b, true);
        assert!(cand.is_empty(), "unseeded empty predicate scans first");
        // Seeded with 100 expected facts, p is deferred behind the
        // cheaper measured q scan until its facts actually commit.
        index.seed(p, Sign::Pos, 100);
        assert_eq!(index.seed_bound(p, Sign::Pos), 100);
        let (idx, cand) = choose(&plan, &index, &[0, 1], &b, true);
        assert_eq!(idx, 1, "measured 3-atom scan beats the 100-fact prior");
        assert_eq!(cand.len(), 3);
        // Measured statistics supersede the seed entirely.
        let s = world.syms.intern("d");
        let t = world.terms.constant(s);
        let atom = world.atoms.intern(p, &[t]);
        index.add(&world, GLit::pos(atom));
        let (idx, cand) = choose(&plan, &index, &[0, 1], &b, true);
        assert_eq!(idx, 0, "one measured p atom beats three q atoms");
        assert_eq!(cand.len(), 1);
    }
}
