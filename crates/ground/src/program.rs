//! Ground programs: the output of grounding.
//!
//! A [`GroundRule`] is a fully instantiated rule — packed literals only —
//! tagged with the component it came from (the paper's `C(r)` function).
//! A [`GroundProgram`] is the instantiation of a whole ordered program,
//! together with the component [`Order`] and precomputed per-component
//! *views*: the view of component `C` is `ground(C*)`, the instances of
//! all rules in components `≥ C`.

use olp_core::{CompId, GLit, Order, World};

/// A fully instantiated rule.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GroundRule {
    /// Head literal.
    pub head: GLit,
    /// Body literals, sorted and deduplicated (order is semantically
    /// irrelevant; canonical form enables instance deduplication).
    pub body: Box<[GLit]>,
    /// The component whose (non-ground) rule this instantiates — `C(r)`.
    pub comp: CompId,
}

impl GroundRule {
    /// Builds a rule, canonicalising the body.
    pub fn new(head: GLit, mut body: Vec<GLit>, comp: CompId) -> Self {
        body.sort_unstable();
        body.dedup();
        GroundRule {
            head,
            body: body.into_boxed_slice(),
            comp,
        }
    }

    /// Whether the body is empty.
    pub fn is_fact(&self) -> bool {
        self.body.is_empty()
    }
}

/// Index of a ground rule within a [`GroundProgram`].
pub type RuleIdx = u32;

/// The grounding of an ordered program.
#[derive(Debug, Clone)]
pub struct GroundProgram {
    /// All ground rule instances, across all components.
    pub rules: Vec<GroundRule>,
    /// The component partial order.
    pub order: Order,
    /// Number of ground atoms materialised in the [`World`] when
    /// grounding finished; interpretations index atoms `0..n_atoms`.
    pub n_atoms: usize,
    /// Per-component view: `views[c]` lists the indices of the rules in
    /// `ground(C*)` (rules of all components `j ≥ c`).
    views: Vec<Vec<RuleIdx>>,
}

impl GroundProgram {
    /// Assembles a ground program, deduplicating identical instances
    /// within a component and building the per-component views.
    pub fn new(mut rules: Vec<GroundRule>, order: Order, n_atoms: usize) -> Self {
        // Canonical dedup across (comp, head, body). Sorting keeps the
        // construction deterministic independent of grounding order.
        rules.sort_unstable_by(|a, b| (a.comp, a.head, &a.body).cmp(&(b.comp, b.head, &b.body)));
        rules.dedup();
        let views = (0..order.len())
            .map(|c| {
                let c = CompId(c as u32);
                rules
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| order.in_view(c, r.comp))
                    .map(|(i, _)| i as RuleIdx)
                    .collect()
            })
            .collect();
        GroundProgram {
            rules,
            order,
            n_atoms,
            views,
        }
    }

    /// The rule indices of `ground(C*)` for component `c`.
    pub fn view(&self, c: CompId) -> &[RuleIdx] {
        &self.views[c.index()]
    }

    /// Iterates over the rules of the view of `c`.
    pub fn view_rules(&self, c: CompId) -> impl Iterator<Item = (RuleIdx, &GroundRule)> {
        self.views[c.index()]
            .iter()
            .map(move |&i| (i, &self.rules[i as usize]))
    }

    /// Total number of rule instances.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether there are no instances.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Renders the entire ground program, one rule per line, grouped by
    /// component — the "show me what the grounder actually produced"
    /// debugging view (the `semantics_explorer` example prints it with
    /// `--dump`).
    pub fn render(&self, world: &World) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for c in 0..self.order.len() {
            let c = CompId(c as u32);
            let _ = writeln!(out, "component {}:", c.0);
            for (i, r) in self.rules.iter().enumerate() {
                if r.comp == c {
                    out.push_str("  ");
                    out.push_str(&self.rule_str(world, i as RuleIdx));
                    out.push('\n');
                }
            }
        }
        out
    }

    /// Renders a ground rule for diagnostics.
    pub fn rule_str(&self, world: &World, idx: RuleIdx) -> String {
        let r = &self.rules[idx as usize];
        let head = world.glit_str(r.head);
        if r.body.is_empty() {
            format!("[{}] {}.", r.comp.0, head)
        } else {
            let body: Vec<String> = r.body.iter().map(|&l| world.glit_str(l)).collect();
            format!("[{}] {} :- {}.", r.comp.0, head, body.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olp_core::AtomId;

    fn order2() -> Order {
        // c0 < c1
        Order::from_edges(2, &[(CompId(0), CompId(1))]).unwrap()
    }

    #[test]
    fn body_canonicalised() {
        let a = GLit::pos(AtomId(3));
        let b = GLit::neg(AtomId(1));
        let r1 = GroundRule::new(GLit::pos(AtomId(0)), vec![a, b, a], CompId(0));
        let r2 = GroundRule::new(GLit::pos(AtomId(0)), vec![b, a], CompId(0));
        assert_eq!(r1, r2);
        assert_eq!(r1.body.len(), 2);
    }

    #[test]
    fn views_follow_order() {
        let h0 = GLit::pos(AtomId(0));
        let h1 = GLit::pos(AtomId(1));
        let rules = vec![
            GroundRule::new(h0, vec![], CompId(0)),
            GroundRule::new(h1, vec![], CompId(1)),
        ];
        let gp = GroundProgram::new(rules, order2(), 2);
        // View of c0 (lowest) sees both; view of c1 sees only its own.
        assert_eq!(gp.view(CompId(0)).len(), 2);
        assert_eq!(gp.view(CompId(1)).len(), 1);
        let (_, r) = gp.view_rules(CompId(1)).next().unwrap();
        assert_eq!(r.comp, CompId(1));
    }

    #[test]
    fn render_groups_by_component() {
        use olp_core::World;
        let mut w = World::new();
        let a = w.ground_atom("a", &[]);
        let b = w.ground_atom("b", &[]);
        let rules = vec![
            GroundRule::new(GLit::pos(a), vec![], CompId(0)),
            GroundRule::new(GLit::neg(b), vec![GLit::pos(a)], CompId(1)),
        ];
        let gp = GroundProgram::new(rules, order2(), 2);
        let text = gp.render(&w);
        assert!(text.contains("component 0:"));
        assert!(text.contains("component 1:"));
        assert!(text.contains("[1] -b :- a."));
    }

    #[test]
    fn duplicate_instances_in_same_component_dedup() {
        let h = GLit::pos(AtomId(0));
        let rules = vec![
            GroundRule::new(h, vec![GLit::pos(AtomId(1))], CompId(0)),
            GroundRule::new(h, vec![GLit::pos(AtomId(1))], CompId(0)),
            // Same rule in the *other* component must be kept distinct
            // (the paper treats it as a distinct ground instance with its
            // own C(r)).
            GroundRule::new(h, vec![GLit::pos(AtomId(1))], CompId(1)),
        ];
        let gp = GroundProgram::new(rules, order2(), 2);
        assert_eq!(gp.len(), 2);
    }
}
