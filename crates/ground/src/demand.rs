//! Demand-driven grounding: ground only what a query can depend on.
//!
//! The semantics-level prover (`olp-semantics`'s relevance cone)
//! prunes at the *ground* level — after everything has been
//! instantiated. For one-shot queries over large programs the win is
//! pruning **before** grounding: compute the predicate-level dependency
//! cone of the query and instantiate only rules whose head predicate
//! lies in it.
//!
//! The cone is closed under every channel through which a rule can
//! influence an atom of a predicate (cf. the ground-level argument in
//! `olp_semantics::prove`):
//!
//! * **derivation** — rules deriving a cone predicate contribute their
//!   body predicates;
//! * **blocking** — whether a body literal's *complement* is derivable
//!   decides blocking; at the predicate level this is the same
//!   predicate, so including body predicates covers it;
//! * **attack** — complementary-headed rules share the head predicate,
//!   so rules are collected by head predicate regardless of sign.
//!
//! Rules whose head predicate is outside the cone can neither derive,
//! block, overrule nor defeat anything the query depends on, so
//! dropping them preserves the least model restricted to cone
//! predicates. Equivalence with full grounding is tested below and in
//! the workspace property suites.

use crate::program::GroundProgram;
use crate::smart::ground_smart_seeded;
use crate::universe::{signature, GroundConfig, GroundError};
use olp_core::{FxHashSet, OrderedProgram, PredId, World};

/// The predicate-level dependency cone of `query_pred`.
pub fn relevant_predicates(prog: &OrderedProgram, query_pred: PredId) -> FxHashSet<PredId> {
    let mut cone: FxHashSet<PredId> = FxHashSet::default();
    let mut stack = vec![query_pred];
    while let Some(p) = stack.pop() {
        if !cone.insert(p) {
            continue;
        }
        for (_, rule) in prog.rules() {
            if rule.head.pred == p {
                for l in rule.body_lits() {
                    if !cone.contains(&l.pred) {
                        stack.push(l.pred);
                    }
                }
            }
        }
    }
    cone
}

/// Grounds only the rules whose head predicate can influence
/// `query_pred`, using the smart grounder. The result agrees with full
/// grounding on the least model, assumption-free models and stable
/// models *restricted to cone predicates*.
pub fn ground_smart_for(
    world: &mut World,
    prog: &OrderedProgram,
    cfg: &GroundConfig,
    query_pred: PredId,
) -> Result<GroundProgram, GroundError> {
    let cone = relevant_predicates(prog, query_pred);
    let mut pruned = OrderedProgram::new();
    for comp in &prog.components {
        pruned.add_component(comp.name);
    }
    for &(lo, hi) in &prog.edges {
        pruned.add_edge(lo, hi);
    }
    for (c, rule) in prog.rules() {
        if cone.contains(&rule.head.pred) {
            pruned.add_rule(c, rule.clone());
        }
    }
    // Keep the FULL program's constants in the active domain: attacker
    // instances quantify over the whole Herbrand universe, so a
    // constant that only occurs in dropped rules can still name a
    // never-blockable attacker instance of a kept rule (found by the
    // `demand_agrees_on_random_datalog` soak; seed 3247 is pinned in
    // the workspace tests).
    let full_sig = signature(world, prog);
    ground_smart_seeded(world, &pruned, cfg, &full_sig.constants)
}

#[cfg(test)]
mod tests {
    use super::*;
    use olp_core::CompId;
    use olp_parser::{parse_ground_literal, parse_program};

    const TWO_ISLANDS: &str = "module up {
        % island 1
        bird(tweety). fly(X) :- bird(X).
        % island 2 (bigger)
        edge(a,b). edge(b,c). edge(c,d).
        path(X,Y) :- edge(X,Y).
        path(X,Y) :- edge(X,Z), path(Z,Y).
     }
     module down < up {
        -fly(X) :- heavy(X).
        heavy(tweety).
     }";

    #[test]
    fn cone_excludes_unrelated_island() {
        let mut w = World::new();
        let p = parse_program(&mut w, TWO_ISLANDS).unwrap();
        let fly = w.pred("fly", 1);
        let cone = relevant_predicates(&p, fly);
        assert!(cone.contains(&w.pred("fly", 1)));
        assert!(cone.contains(&w.pred("bird", 1)));
        assert!(cone.contains(&w.pred("heavy", 1)));
        assert!(!cone.contains(&w.pred("edge", 2)));
        assert!(!cone.contains(&w.pred("path", 2)));
    }

    #[test]
    fn cone_follows_attack_and_blocking_chains() {
        // fly depends on heavy (attacker body) which depends on scale
        // readings; the cone must chase the whole chain.
        let mut w = World::new();
        let p = parse_program(
            &mut w,
            "module up { bird(t). fly(X) :- bird(X). scale(t, 9). unrelated(z). }
             module down < up {
                heavy(X) :- scale(X, W), W > 5.
                -fly(X) :- heavy(X).
             }",
        )
        .unwrap();
        let fly = w.pred("fly", 1);
        let cone = relevant_predicates(&p, fly);
        assert!(cone.contains(&w.pred("heavy", 1)));
        assert!(cone.contains(&w.pred("scale", 2)));
        assert!(!cone.contains(&w.pred("unrelated", 1)));

        // The pruned grounding still contains the attack chain.
        let cfg = GroundConfig::default();
        let g = ground_smart_for(&mut w, &p, &cfg, fly).unwrap();
        let nf = parse_ground_literal(&mut w, "-fly(t)").unwrap();
        assert!(g.rules.iter().any(|r| r.head == nf));
        let _ = CompId(1);
    }
}
