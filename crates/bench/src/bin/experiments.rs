//! Regenerates the measured column of EXPERIMENTS.md: every figure and
//! worked example of the paper, checked mechanically, plus quick
//! timings for the shape benchmarks (run `cargo bench` for the full
//! Criterion treatment).
//!
//! Run with: `cargo run --release -p olp-bench --bin experiments`

use olp_bench::*;
use olp_classic::{
    founded_models, partial_stable_models, stable_models_total, well_founded_model, NafProgram,
};
use olp_core::{CompId, Interpretation, World};
use olp_ground::{ground_exhaustive, GroundConfig};
use olp_kb::{GroundStrategy, Kb, KbBuilder};
use olp_parser::{parse_ground_literal, parse_program};
use olp_semantics::{
    enumerate_assumption_free, enumerate_assumption_free_decomposed,
    enumerate_assumption_free_propagating, enumerate_models, has_total_model, is_assumption_free,
    is_model, least_model, stable_models, stable_models_decomposed,
    stable_models_monolithic_budgeted, View,
};
use olp_transform::{extended_version, ordered_version, three_level_version};
use olp_workload::{
    ancestor, defeating_cliques, defeating_pairs, expert_panel, mutation_stream, taxonomy_chain,
    taxonomy_expected_fly, GraphShape, Mutation, MutationCfg,
};
use std::time::{Duration, Instant};

struct Report {
    rows: Vec<(String, String, String, bool)>,
}

impl Report {
    fn new() -> Self {
        Report { rows: Vec::new() }
    }
    fn row(&mut self, id: &str, claim: &str, measured: String, ok: bool) {
        self.rows
            .push((id.to_string(), claim.to_string(), measured, ok));
    }
    fn print(&self) {
        println!("| id | paper claim | measured | verdict |");
        println!("|---|---|---|---|");
        for (id, claim, measured, ok) in &self.rows {
            println!(
                "| {id} | {claim} | {measured} | {} |",
                if *ok { "✓" } else { "✗ MISMATCH" }
            );
        }
        let bad = self.rows.iter().filter(|r| !r.3).count();
        println!(
            "\n{} experiments, {} match the paper, {} mismatches",
            self.rows.len(),
            self.rows.len() - bad,
            bad
        );
    }
}

fn lit(w: &mut World, s: &str) -> olp_core::GLit {
    parse_ground_literal(w, s).unwrap()
}

fn interp(w: &mut World, lits: &[&str]) -> Interpretation {
    Interpretation::from_literals(lits.iter().map(|s| lit(w, s))).unwrap()
}

fn main() {
    let mut r = Report::new();

    // ---------------------------------------------------------- E1/E2
    {
        let mut b = setup_exhaustive(FIG1_SRC);
        let c1 = comp(&b, "c1");
        let m = least_model(&View::new(&b.ground, c1));
        let i1 = interp(
            &mut b.world,
            &[
                "bird(pigeon)",
                "bird(penguin)",
                "ground_animal(penguin)",
                "-ground_animal(pigeon)",
                "fly(pigeon)",
                "-fly(penguin)",
            ],
        );
        r.row(
            "E1 (Fig.1/Ex.1-3)",
            "penguin does not fly in C1, pigeon does; I1 is the total least model",
            format!("least model = {}", m.render(&b.world)),
            m == i1 && m.is_total(b.ground.n_atoms),
        );
        let c2 = comp(&b, "c2");
        let m2 = least_model(&View::new(&b.ground, c2));
        let fly_p = lit(&mut b.world, "fly(penguin)");
        r.row(
            "E1 (view C2)",
            "from C2 the penguin flies (exception invisible above)",
            format!("fly(penguin) = {}", m2.holds(fly_p)),
            m2.holds(fly_p),
        );
    }
    {
        let src = "bird(penguin). bird(pigeon). fly(X) :- bird(X).
             -ground_animal(X) :- bird(X). ground_animal(penguin).
             -fly(X) :- ground_animal(X).";
        let mut b = setup_exhaustive(src);
        let v = View::new(&b.ground, CompId(0));
        let m = least_model(&v);
        let i1_hat = interp(
            &mut b.world,
            &[
                "bird(pigeon)",
                "bird(penguin)",
                "fly(pigeon)",
                "-ground_animal(pigeon)",
            ],
        );
        r.row(
            "E2 (P̂1 collapsed)",
            "defeating leaves fly(penguin), ground_animal(penguin) undefined; Î1 is the model",
            format!("least model = {}", m.render(&b.world)),
            m == i1_hat,
        );
    }

    // ------------------------------------------------------------- E3
    {
        let b = setup_exhaustive(FIG2_SRC);
        let c1 = comp(&b, "c1");
        let v = View::new(&b.ground, c1);
        let m = least_model(&v);
        let total = has_total_model(&v, b.ground.n_atoms);
        let af = enumerate_assumption_free(&v, b.ground.n_atoms);
        r.row(
            "E3 (Fig.2/Ex.2-4)",
            "rich/poor defeat; empty AF model; no total model for P2 in C1",
            format!(
                "lfp = {}, total model exists = {}, #AF = {}",
                m.render(&b.world),
                total,
                af.len()
            ),
            m.is_empty() && !total && af.len() == 1,
        );
    }

    // ------------------------------------------------------------- E4
    {
        let scenarios = [
            ("", "silent", (false, false)),
            ("inflation(12).", "take_loan", (true, false)),
            ("inflation(12). loan_rate(16).", "defeated", (false, false)),
            (
                "inflation(19). loan_rate(16).",
                "take_loan (refined)",
                (true, false),
            ),
        ];
        let mut all_ok = true;
        let mut measured = String::new();
        for (facts, label, expect) in scenarios {
            let mut b = setup_exhaustive(&fig3_src(facts));
            let myself = comp(&b, "myself");
            let m = least_model(&View::new(&b.ground, myself));
            let t = lit(&mut b.world, "take_loan");
            let got = (m.holds(t), m.holds(t.complement()));
            all_ok &= got == expect;
            measured.push_str(&format!("[{label}: {:?}] ", got));
        }
        r.row(
            "E4 (Fig.3 loan)",
            "no facts→silent; infl 12→loan; +rate 16→defeated; infl 19→refinement wins",
            measured,
            all_ok,
        );
    }

    // ------------------------------------------------------------- E5
    {
        let b = setup_exhaustive("a :- b. -a :- b.");
        let v = View::new(&b.ground, CompId(0));
        let models = enumerate_models(&v, b.ground.n_atoms, None);
        let mut renders: Vec<String> = models.iter().map(|m| m.render(&b.world)).collect();
        renders.sort();
        let mut expected: Vec<String> = ["{}", "{b}", "{-b}", "{-b, a}", "{-a, -b}"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        expected.sort();
        r.row(
            "E5 (P3, Ex.3)",
            "models are exactly {b},{¬b},{a,¬b},{¬a,¬b},∅ (Herbrand base is NOT a model)",
            format!("{renders:?}"),
            renders == expected,
        );
    }

    // ------------------------------------------------------------- E6
    {
        let mut b = setup_exhaustive("a :- b.");
        let v = View::new(&b.ground, CompId(0));
        let af = enumerate_assumption_free(&v, b.ground.n_atoms);
        let nn = interp(&mut b.world, &["-a", "-b"]);
        let nn_model = is_model(&v, &nn, b.ground.n_atoms);
        let nn_af = is_assumption_free(&v, &nn);
        let b2 = setup_exhaustive("module c2 { -a. -b. } module c1 < c2 { a :- b. }");
        let c1 = comp(&b2, "c1");
        let v2 = View::new(&b2.ground, c1);
        let stable2 = stable_models(&v2, b2.ground.n_atoms);
        r.row(
            "E6 (P4, Ex.4)",
            "∅ is the only AF model of {a←b}; {¬a,¬b} is a model but not AF; adding CWA C2 makes it the (stable) AF model",
            format!(
                "#AF = {} (∅: {}), {{¬a,¬b}} model = {nn_model}, AF = {nn_af}; with CWA stable = {:?}",
                af.len(),
                af[0].is_empty(),
                stable2.iter().map(|m| m.render(&b2.world)).collect::<Vec<_>>()
            ),
            af.len() == 1 && nn_model && !nn_af && stable2.len() == 1 && stable2[0].len() == 2,
        );
    }

    // ------------------------------------------------------------- E7
    {
        let b = setup_exhaustive(
            "module c2 { a. b. c. }
             module c1 < c2 { -a :- b, c. -b :- a. -b :- -b. }",
        );
        let c1 = comp(&b, "c1");
        let v = View::new(&b.ground, c1);
        let stable = stable_models(&v, b.ground.n_atoms);
        let mut renders: Vec<String> = stable.iter().map(|m| m.render(&b.world)).collect();
        renders.sort();
        let lm = least_model(&v);
        r.row(
            "E7 (P5, Ex.5)",
            "two stable models {a,¬b,c} and {¬a,b,c}; {c} AF but not stable",
            format!("stable = {renders:?}, lfp = {}", lm.render(&b.world)),
            renders == vec!["{-a, b, c}".to_string(), "{-b, a, c}".to_string()]
                && lm.render(&b.world) == "{c}",
        );
    }

    // ------------------------------------------------------------- E8
    {
        let mut w = World::new();
        let flat = parse_program(
            &mut w,
            "parent(a,b). parent(b,c).
             anc(X,Y) :- parent(X,Y).
             anc(X,Y) :- parent(X,Z), anc(Z,Y).",
        )
        .unwrap();
        let rules = flat.components[0].rules.clone();
        let (ov, c) = ordered_version(&mut w, &rules);
        let g = ground_exhaustive(&mut w, &ov, &GroundConfig::default()).unwrap();
        let m = least_model(&View::new(&g, c));
        let ok = m.is_total(g.n_atoms)
            && m.holds(lit(&mut w, "anc(a,c)"))
            && m.holds(lit(&mut w, "-anc(c,a)"));
        r.row(
            "E8 (Ex.6 ancestor OV)",
            "OV = explicit CWA: total least model, anc = transitive closure, rest false",
            format!("total = {}, |model| = {}", m.is_total(g.n_atoms), m.len()),
            ok,
        );
    }

    // ------------------------------------------------------------- E9
    {
        let mut w = World::new();
        let flat = parse_program(&mut w, "p :- -p.").unwrap();
        let rules = flat.components[0].rules.clone();
        let gc = GroundConfig::default();
        let flat_ground = ground_exhaustive(&mut w, &flat, &gc).unwrap();
        let naf = NafProgram::from_ground(&flat_ground).unwrap();
        let (ov, c) = ordered_version(&mut w, &rules);
        let ovg = ground_exhaustive(&mut w, &ov, &gc).unwrap();
        let m_p = interp(&mut w, &["p"]);
        let three_valued = olp_classic::is_3valued_model(&naf, &m_p);
        let ov_model = is_model(&View::new(&ovg, c), &m_p, ovg.n_atoms);
        let (ev, ec) = extended_version(&mut w, &rules);
        let evg = ground_exhaustive(&mut w, &ev, &gc).unwrap();
        let ev_model = is_model(&View::new(&evg, ec), &m_p, evg.n_atoms);
        r.row(
            "E9 (Ex.7 p←¬p)",
            "{p} is a 3-valued model of C but NOT a model of OV(C); EV(C) recovers it",
            format!("3-valued = {three_valued}, OV model = {ov_model}, EV model = {ev_model}"),
            three_valued && !ov_model && ev_model,
        );
    }

    // ------------------------------------------------------------ E10
    {
        let mut w = World::new();
        let flat = parse_program(
            &mut w,
            "bird(tweety). ground_animal(tweety). bird(robin).
             fly(X) :- bird(X).
             -fly(X) :- ground_animal(X).",
        )
        .unwrap();
        let rules = flat.components[0].rules.clone();
        let (tv, cm) = three_level_version(&mut w, &rules);
        let g = ground_exhaustive(&mut w, &tv, &GroundConfig::default()).unwrap();
        let stable = stable_models(&View::new(&g, cm), g.n_atoms);
        let ok = stable.len() == 1
            && stable[0].holds(lit(&mut w, "-fly(tweety)"))
            && stable[0].holds(lit(&mut w, "fly(robin)"));
        r.row(
            "E10 (Ex.8/9 3V)",
            "negative rules as exceptions: ground-animal birds do not fly, others do",
            format!(
                "unique stable = {}",
                stable
                    .first()
                    .map(|m| m.render(&w))
                    .unwrap_or_else(|| "-".into())
            ),
            ok,
        );
    }

    // ------------------------------------------- T3/T4 one-shot checks
    {
        let mut w = World::new();
        let flat = parse_program(&mut w, "p :- -q. q :- -p. r :- p. r :- q.").unwrap();
        let rules = flat.components[0].rules.clone();
        let gc = GroundConfig::default();
        let fg = ground_exhaustive(&mut w, &flat, &gc).unwrap();
        let (ov, c) = ordered_version(&mut w, &rules);
        let ovg = ground_exhaustive(&mut w, &ov, &gc).unwrap();
        let n = w.atoms.len();
        let mut naf = NafProgram::from_ground(&fg).unwrap();
        naf.n_atoms = n;
        let ov_stable = stable_models(&View::new(&ovg, c), n);
        let sz = partial_stable_models(&naf);
        let gl = stable_models_total(&naf);
        let wfm = well_founded_model(&naf);
        let founded = founded_models(&naf);
        let mut a: Vec<String> = ov_stable.iter().map(|m| m.render(&w)).collect();
        a.sort();
        let mut bb: Vec<String> = sz.iter().map(|m| m.render(&w)).collect();
        bb.sort();
        r.row(
            "T3/Cor.1 (spot)",
            "stable(OV) = SZ partial stable; total ones = GL stable; WFS is founded",
            format!(
                "stable(OV) = {a:?}, GL count = {}, WFS founded = {}",
                gl.len(),
                founded.contains(&wfm)
            ),
            a == bb && gl.len() == 2 && founded.contains(&wfm),
        );
    }

    r.print();

    // -------------------------------------------------- B-series shape
    println!("\n## Shape measurements (quick; run `cargo bench` for Criterion)\n");

    // B1: taxonomy scaling + correctness.
    for &n in &[256usize, 1024, 4096] {
        let mut w = World::new();
        let prog = taxonomy_chain(&mut w, n, 4);
        let t0 = Instant::now();
        let g = ground_built_smart(&mut w, &prog);
        let t_ground = t0.elapsed();
        let view = View::new(&g, CompId(0));
        let t1 = Instant::now();
        let m = least_model(&view);
        let t_fix = t1.elapsed();
        let correct = (0..n).all(|s| {
            let f = parse_ground_literal(&mut w, &format!("fly(s{s})")).unwrap();
            m.holds(f) == taxonomy_expected_fly(n, 4, s)
        });
        println!(
            "B1 taxonomy N={n}: ground(smart) {:?} ({} instances), lfp {:?}, verdicts correct: {correct}",
            t_ground,
            g.len(),
            t_fix
        );
    }

    // B1b: goal-directed proof vs whole-model materialisation.
    for &n in &[1024usize, 4096] {
        let mut w = World::new();
        let prog = taxonomy_chain(&mut w, n, 4);
        let g = ground_built_smart(&mut w, &prog);
        let view = View::new(&g, CompId(0));
        let q = parse_ground_literal(&mut w, "fly(s0)").unwrap();
        let t0 = Instant::now();
        let full = least_model(&view).holds(q);
        let t_full = t0.elapsed();
        let t1 = Instant::now();
        let goal = olp_semantics::prove(&view, q);
        let t_goal = t1.elapsed();
        assert_eq!(full, goal);
        println!(
            "B1b prove N={n}: whole model {t_full:?} vs goal-directed {t_goal:?} (answers agree)"
        );
    }

    // B2: defeating chains.
    for &n in &[64usize, 256, 1024] {
        let mut w = World::new();
        let prog = defeating_pairs(&mut w, n);
        let g = ground_built_smart(&mut w, &prog);
        let view = View::new(&g, CompId(0));
        let t = Instant::now();
        let m = least_model(&view);
        println!(
            "B2 defeating N={n}: lfp {:?}, derived {} literals (expected 0)",
            t.elapsed(),
            m.len()
        );
    }

    // B3: expert panels.
    for &n in &[16usize, 64, 256] {
        let mut w = World::new();
        let prog = expert_panel(&mut w, n, 19, 16);
        let t0 = Instant::now();
        let g = ground_built_smart(&mut w, &prog);
        let view = View::new(&g, CompId(0));
        let m = least_model(&view);
        let take = parse_ground_literal(&mut w, "take_loan").unwrap();
        println!(
            "B3 experts N={n}: end-to-end {:?}, verdict take_loan = {}",
            t0.elapsed(),
            if m.holds(take) {
                "true"
            } else if m.holds(take.complement()) {
                "false"
            } else {
                "undefined"
            }
        );
    }

    // B4: ancestor smart vs exhaustive.
    for &n in &[32usize, 64] {
        let mut w1 = World::new();
        let p1 = ancestor(&mut w1, GraphShape::Chain, n);
        let t0 = Instant::now();
        let gs = ground_built_smart(&mut w1, &p1);
        let t_smart = t0.elapsed();
        let t1 = Instant::now();
        let ge = ground_built_exhaustive(&mut w1, &p1);
        let t_ex = t1.elapsed();
        println!(
            "B4 ancestor chain N={n}: smart {:?} ({} inst) vs exhaustive {:?} ({} inst)",
            t_smart,
            gs.len(),
            t_ex,
            ge.len()
        );
    }

    // B6: WFS vs ordered on win/move.
    for &n in &[64usize, 256] {
        let src = win_move_src(n);
        let mut w = World::new();
        let flat = parse_program(&mut w, &src).unwrap();
        let rules = flat.components[0].rules.clone();
        let gc = GroundConfig::default();
        let fg = olp_ground::ground_smart(&mut w, &flat, &gc).unwrap();
        let naf = NafProgram::from_ground(&fg).unwrap();
        let t0 = Instant::now();
        let _ = well_founded_model(&naf);
        let t_wfs = t0.elapsed();
        let (ov, c) = ordered_version(&mut w, &rules);
        let ovg = olp_ground::ground_smart(&mut w, &ov, &gc).unwrap();
        let view = View::new(&ovg, c);
        let t1 = Instant::now();
        let _ = least_model(&view);
        let t_olp = t1.elapsed();
        println!("B6 win/move N={n}: WFS {t_wfs:?} vs ordered OV lfp {t_olp:?}");
    }

    // B8: component-wise evaluation — monolithic vs decomposed engines
    // on k independent defeating cliques. Differential check (identical
    // model sets) plus the ≥10x acceptance gate at k = 6, emitted as
    // BENCH_decomp.json for machine consumption.
    {
        fn rendered(ms: &[Interpretation], w: &World) -> Vec<String> {
            let mut v: Vec<String> = ms.iter().map(|m| m.render(w)).collect();
            v.sort();
            v
        }
        // Best-of-3 to keep the gate robust against scheduler noise.
        fn best_of_3<T>(mut f: impl FnMut() -> T) -> (Duration, T) {
            let mut best = Duration::MAX;
            let mut out = None;
            for _ in 0..3 {
                let t = Instant::now();
                let v = f();
                best = best.min(t.elapsed());
                out = Some(v);
            }
            (best, out.unwrap())
        }
        let mut json_rows = Vec::new();
        for &k in &[2usize, 4, 6] {
            let mut w = World::new();
            let prog = defeating_cliques(&mut w, k);
            let g = ground_built_exhaustive(&mut w, &prog);
            let view = View::new(&g, CompId(0));
            let n = g.n_atoms;
            let (t_af_mono, af_mono) =
                best_of_3(|| enumerate_assumption_free_propagating(&view, n));
            let (t_af_dec, af_dec) = best_of_3(|| enumerate_assumption_free_decomposed(&view, n));
            assert_eq!(
                rendered(&af_mono, &w),
                rendered(&af_dec, &w),
                "decomposed AF set differs from monolithic at k={k}"
            );
            let (t_st_mono, st_mono) = best_of_3(|| {
                stable_models_monolithic_budgeted(&view, n, &olp_core::Budget::unlimited(), None)
                    .into_value()
            });
            let (t_st_dec, st_dec) = best_of_3(|| stable_models_decomposed(&view, n));
            assert_eq!(
                rendered(&st_mono, &w),
                rendered(&st_dec, &w),
                "decomposed stable set differs from monolithic at k={k}"
            );
            let af_speedup = t_af_mono.as_secs_f64() / t_af_dec.as_secs_f64().max(1e-9);
            let st_speedup = t_st_mono.as_secs_f64() / t_st_dec.as_secs_f64().max(1e-9);
            println!(
                "B8 decomp k={k}: AF mono {t_af_mono:?} vs dec {t_af_dec:?} ({af_speedup:.1}x), \
                 stable mono {t_st_mono:?} vs dec {t_st_dec:?} ({st_speedup:.1}x), \
                 sets identical ({} AF / {} stable models){}",
                af_mono.len(),
                st_mono.len(),
                if k == 6 && st_speedup >= 10.0 {
                    " — ≥10x gate: PASS"
                } else if k == 6 {
                    " — ≥10x gate: FAIL"
                } else {
                    ""
                }
            );
            json_rows.push(format!(
                "  {{\"k\": {k}, \"n_af_models\": {}, \"n_stable_models\": {}, \
                 \"af_monolithic_ns\": {}, \"af_decomposed_ns\": {}, \"af_speedup\": {af_speedup:.2}, \
                 \"stable_monolithic_ns\": {}, \"stable_decomposed_ns\": {}, \"stable_speedup\": {st_speedup:.2}}}",
                af_mono.len(),
                st_mono.len(),
                t_af_mono.as_nanos(),
                t_af_dec.as_nanos(),
                t_st_mono.as_nanos(),
                t_st_dec.as_nanos(),
            ));
        }
        let json = format!(
            "{{\n\"workload\": \"defeating_cliques\",\n\"rows\": [\n{}\n]\n}}\n",
            json_rows.join(",\n")
        );
        match std::fs::write("BENCH_decomp.json", &json) {
            Ok(()) => println!("B8 decomp: wrote BENCH_decomp.json"),
            Err(e) => println!("B8 decomp: could not write BENCH_decomp.json: {e}"),
        }
    }

    // B9: incremental maintenance — delta grounding + stratum-local
    // recomputation vs a full smart reground on every mutation, on the
    // mutation_stream ancestor-chain workload, plus the flat-arena
    // ablation (patched arenas + flat delta revalidation vs dropping
    // the arena cache on every commit and reflattening from scratch).
    // Differential check (identical rendered models on all paths after
    // every mutation) plus the ≥5x acceptance gate on the single-fact
    // assert at the largest chain, emitted as BENCH_incremental.json.
    {
        fn stream_cfg(n_base: usize) -> MutationCfg {
            MutationCfg {
                n_base,
                ..MutationCfg::default()
            }
        }
        fn build_kb(n_base: usize, incremental: bool) -> Kb {
            let (base, _) = mutation_stream(&stream_cfg(n_base), 7);
            let mut w = World::new();
            let prog = parse_program(&mut w, &base).unwrap();
            let mut kb = KbBuilder::from_parts(w, prog)
                .build_with(GroundStrategy::Smart, &GroundConfig::default())
                .unwrap();
            kb.set_incremental(incremental);
            let _ = kb.model("main").unwrap();
            kb
        }
        fn rendered(kb: &mut Kb) -> String {
            let m = kb.model("main").unwrap().clone();
            kb.render(&m)
        }
        // Best-of-3 timing of a single-edge assert; every rep is undone
        // by an untimed retract so each one starts from the same state.
        fn best_assert(kb: &mut Kb, rule: &str, query: bool) -> Duration {
            let mut best = Duration::MAX;
            for _ in 0..3 {
                let t = Instant::now();
                kb.assert_rule("main", rule).unwrap();
                if query {
                    let _ = kb.model("main").unwrap();
                }
                best = best.min(t.elapsed());
                assert!(kb.retract_rule("main", rule).unwrap());
            }
            best
        }
        // Replays the whole mutation stream with a least-model read
        // after every step (the end-to-end maintenance loop). With
        // `reflatten` the compiled-arena cache is dropped before every
        // mutation, reproducing the pre-patching commit (which cleared
        // it wholesale): each post-step read then pays a from-scratch
        // flatten instead of an in-place `FlatView::apply_delta` splice.
        fn replay(kb: &mut Kb, muts: &[Mutation], reflatten: bool) -> Duration {
            let t = Instant::now();
            for m in muts {
                if reflatten {
                    kb.clear_flat_cache();
                }
                match m {
                    Mutation::Assert { object, rule } => {
                        kb.assert_rule(object, rule).unwrap();
                    }
                    Mutation::Retract { object, rule } => {
                        kb.retract_rule(object, rule).unwrap();
                    }
                }
                let _ = kb.model(m.object()).unwrap();
            }
            t.elapsed()
        }
        const EDGE: &str = "parent(fresh_a, fresh_b).";
        let sizes = [64usize, 96, 128, 192];
        let largest = *sizes.last().unwrap();
        let mut json_rows = Vec::new();
        for &n in &sizes {
            let (_, muts) = mutation_stream(&stream_cfg(n), 7);
            let mut inc = build_kb(n, true);
            let mut full = build_kb(n, false);
            // Differential check: both paths agree before, after the
            // assert, and again after the retract.
            assert_eq!(rendered(&mut inc), rendered(&mut full), "n={n} base");
            inc.assert_rule("main", EDGE).unwrap();
            full.assert_rule("main", EDGE).unwrap();
            assert_eq!(rendered(&mut inc), rendered(&mut full), "n={n} assert");
            assert!(inc.retract_rule("main", EDGE).unwrap());
            assert!(full.retract_rule("main", EDGE).unwrap());
            assert_eq!(rendered(&mut inc), rendered(&mut full), "n={n} retract");
            let t_inc = best_assert(&mut inc, EDGE, false);
            let t_full = best_assert(&mut full, EDGE, false);
            let t_inc_q = best_assert(&mut inc, EDGE, true);
            let t_full_q = best_assert(&mut full, EDGE, true);
            let t_inc_s = replay(&mut inc, &muts, false);
            let t_full_s = replay(&mut full, &muts, false);
            assert_eq!(rendered(&mut inc), rendered(&mut full), "n={n} stream");
            // Arena-maintenance ablation: same incremental machinery,
            // but the compiled arenas are dropped (pre-patching commit)
            // instead of spliced in place. Models must stay identical.
            let mut reflat = build_kb(n, true);
            let t_reflat_s = replay(&mut reflat, &muts, true);
            assert_eq!(rendered(&mut inc), rendered(&mut reflat), "n={n} reflat");
            let speedup = t_full.as_secs_f64() / t_inc.as_secs_f64().max(1e-9);
            let q_speedup = t_full_q.as_secs_f64() / t_inc_q.as_secs_f64().max(1e-9);
            let s_speedup = t_full_s.as_secs_f64() / t_inc_s.as_secs_f64().max(1e-9);
            let flat_speedup = t_reflat_s.as_secs_f64() / t_inc_s.as_secs_f64().max(1e-9);
            println!(
                "B9 incremental n={n}: assert {t_inc:?} vs full refresh {t_full:?} ({speedup:.1}x), \
                 assert+query {t_inc_q:?} vs {t_full_q:?} ({q_speedup:.1}x), \
                 {}-step stream {t_inc_s:?} vs {t_full_s:?} ({s_speedup:.1}x), \
                 patched arenas vs clear+reflatten {t_inc_s:?} vs {t_reflat_s:?} ({flat_speedup:.1}x), \
                 models identical{}",
                muts.len(),
                if n == largest && speedup >= 5.0 {
                    " — ≥5x gate: PASS"
                } else if n == largest {
                    " — ≥5x gate: FAIL"
                } else {
                    ""
                }
            );
            json_rows.push(format!(
                "  {{\"n_base\": {n}, \"n_mutations\": {}, \
                 \"assert_incremental_ns\": {}, \"assert_full_refresh_ns\": {}, \"assert_speedup\": {speedup:.2}, \
                 \"assert_query_incremental_ns\": {}, \"assert_query_full_refresh_ns\": {}, \"assert_query_speedup\": {q_speedup:.2}, \
                 \"stream_incremental_ns\": {}, \"stream_full_refresh_ns\": {}, \"stream_speedup\": {s_speedup:.2}, \
                 \"stream_flat_patched_ns\": {}, \"stream_flat_reflatten_ns\": {}, \"stream_flat_speedup\": {flat_speedup:.2}}}",
                muts.len(),
                t_inc.as_nanos(),
                t_full.as_nanos(),
                t_inc_q.as_nanos(),
                t_full_q.as_nanos(),
                t_inc_s.as_nanos(),
                t_full_s.as_nanos(),
                t_inc_s.as_nanos(),
                t_reflat_s.as_nanos(),
            ));
        }
        let json = format!(
            "{{\n\"workload\": \"mutation_stream\",\n\"rows\": [\n{}\n]\n}}\n",
            json_rows.join(",\n")
        );
        match std::fs::write("BENCH_incremental.json", &json) {
            Ok(()) => println!("B9 incremental: wrote BENCH_incremental.json"),
            Err(e) => println!("B9 incremental: could not write BENCH_incremental.json: {e}"),
        }
    }

    // B10: the parallel evaluation pipeline — multi-threaded grounding,
    // the flat-arena least model with morsel-driven work stealing, and
    // the join planner, on the scaled random-graph ancestor workload
    // plus defeating cliques. Differential check (byte-identical ground
    // program and identical least model at every thread count) plus
    // three acceptance gates, emitted as BENCH_parallel.json:
    //   * ≥2.5x end-to-end (ground + least model) at 8 threads vs 1 on
    //     the scaled ancestor — evaluated only when the host actually
    //     has ≥8 cores. Thread counts exceeding the physical core count
    //     are not measured at all: oversubscribed timings say nothing
    //     about the scheduler, so no row is emitted and the gate is
    //     reported as SKIP, never as a fake PASS or FAIL;
    //   * single-thread flat least model vs the PR 4 interpretive
    //     wavefront number (33.12ms on the reference 1-core host) —
    //     the flat representation must win on *one* thread before any
    //     parallel claim matters;
    //   * ≥1.3x single-threaded from the join planner alone (plan on
    //     vs off), which is host-independent and always enforced.
    {
        use olp_ground::{ground_smart, GroundProgram};
        use olp_semantics::{
            flatten, least_model_flat, least_model_parallel, least_model_stratified,
        };

        const N: usize = 220;
        const EDGES: usize = 660;
        const CLIQUES: usize = 10;
        // PR 4's single-thread least_model_ns on the reference host
        // (BENCH_parallel.json as committed there) — the bar the flat
        // engine has to clear.
        const PR4_LEAST_MODEL_NS: u128 = 33_124_768;
        // The planner ablation runs a smaller graph with the attempt
        // ceiling lifted: `max_instances` meters join *attempts*, and
        // the unplanned full-scan join exceeds the default 10M ceiling
        // at the scaled size — which is the planner's point, but makes
        // the baseline unmeasurable there.
        const PLAN_N: usize = 120;
        const PLAN_EDGES: usize = 360;

        fn build_ancestor(
            n: usize,
            edges: usize,
            threads: usize,
            plan: bool,
            max_instances: usize,
        ) -> (World, GroundProgram) {
            let mut w = World::new();
            let p = ancestor(&mut w, GraphShape::Random { edges, seed: 42 }, n);
            let cfg = GroundConfig {
                threads,
                plan,
                max_instances,
                ..GroundConfig::default()
            };
            let g = ground_smart(&mut w, &p, &cfg).expect("ancestor grounds");
            (w, g)
        }
        fn best_of_3<T>(mut f: impl FnMut() -> T) -> (Duration, T) {
            let mut best = Duration::MAX;
            let mut out = None;
            for _ in 0..3 {
                let t = Instant::now();
                let v = f();
                best = best.min(t.elapsed());
                out = Some(v);
            }
            (best, out.unwrap())
        }

        let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        // Only thread counts the hardware can actually run in parallel
        // are measured; a PASS/FAIL claim for an oversubscribed count
        // would be noise dressed up as data.
        let thread_counts: Vec<usize> = [1usize, 2, 4, 8]
            .into_iter()
            .filter(|&t| t <= host_cores)
            .collect();
        let dflt = GroundConfig::default().max_instances;
        let (w1, g1) = build_ancestor(N, EDGES, 1, true, dflt);
        let ref_render = g1.render(&w1);
        let ref_model = least_model_stratified(&View::new(&g1, CompId(0))).render(&w1);

        let mut anc_rows = Vec::new();
        let mut e2e_1t = Duration::MAX;
        let mut e2e_8t = None;
        let mut lfp_1t = Duration::MAX;
        for &threads in &thread_counts {
            let (t_ground, (wt, gt)) = best_of_3(|| build_ancestor(N, EDGES, threads, true, dflt));
            assert_eq!(
                ref_render,
                gt.render(&wt),
                "parallel ground program differs at {threads} threads"
            );
            let view = View::new(&gt, CompId(0));
            let (t_lfp, model) = best_of_3(|| {
                if threads == 1 {
                    least_model_flat(&flatten(&view))
                } else {
                    least_model_parallel(&view, threads)
                }
            });
            assert_eq!(
                ref_model,
                model.render(&wt),
                "flat least model differs at {threads} threads"
            );
            let e2e = t_ground + t_lfp;
            if threads == 1 {
                e2e_1t = e2e;
                lfp_1t = t_lfp;
            }
            if threads == 8 {
                e2e_8t = Some(e2e);
            }
            println!(
                "B10 parallel ancestor N={N} E={EDGES} threads={threads}: \
                 ground {t_ground:?} + lfp {t_lfp:?} = {e2e:?}, model identical"
            );
            anc_rows.push(format!(
                "  {{\"threads\": {threads}, \"ground_ns\": {}, \"least_model_ns\": {}, \"end_to_end_ns\": {}}}",
                t_ground.as_nanos(),
                t_lfp.as_nanos(),
                e2e.as_nanos(),
            ));
        }
        let (par_speedup_json, par_gate) = match e2e_8t {
            None => {
                println!(
                    "B10 parallel ancestor: ≥2.5x@8t gate SKIP — host has {host_cores} core(s); \
                     8-thread runs were not measured (oversubscription measures nothing)"
                );
                ("null".to_string(), "skipped_insufficient_cores")
            }
            Some(e8) => {
                let s = e2e_1t.as_secs_f64() / e8.as_secs_f64().max(1e-9);
                let gate = if s >= 2.5 { "pass" } else { "fail" };
                println!(
                    "B10 parallel ancestor: end-to-end 8t speedup {s:.2}x — ≥2.5x gate: {}",
                    gate.to_uppercase()
                );
                (format!("{s:.2}"), gate)
            }
        };
        // Single-thread regression gate: the flat arena engine against
        // PR 4's interpretive number. Comparable only on the reference
        // host class, so any cross-host run is informational — but a
        // slower flat engine here would fail loudly either way.
        let flat_speedup = PR4_LEAST_MODEL_NS as f64 / (lfp_1t.as_nanos() as f64).max(1.0);
        let flat_gate = if lfp_1t.as_nanos() < PR4_LEAST_MODEL_NS {
            "pass"
        } else {
            "fail"
        };
        println!(
            "B10 flat ancestor 1t: least model {lfp_1t:?} vs PR4 {:?} \
             ({flat_speedup:.2}x) — improvement gate: {}",
            Duration::from_nanos(PR4_LEAST_MODEL_NS as u64),
            flat_gate.to_uppercase()
        );

        // Many independent strata, microsecond-scale total work — the
        // workload where PR 4's per-round barrier turned threads into a
        // 27x slowdown. The morsel engine's sequential fallback
        // (weight below `seq_threshold`) must keep every thread count
        // at the single-thread cost.
        let mut wq = World::new();
        let pq = defeating_cliques(&mut wq, CLIQUES);
        let gq = ground_smart(&mut wq, &pq, &GroundConfig::default()).expect("cliques ground");
        let qview = View::new(&gq, CompId(0));
        let clique_ref = least_model_stratified(&qview).render(&wq);
        let mut clique_rows = Vec::new();
        for &threads in &thread_counts {
            let (t_lfp, model) = best_of_3(|| {
                if threads == 1 {
                    least_model_flat(&flatten(&qview))
                } else {
                    least_model_parallel(&qview, threads)
                }
            });
            assert_eq!(
                clique_ref,
                model.render(&wq),
                "flat least model differs on cliques at {threads} threads"
            );
            println!("B10 parallel cliques k={CLIQUES} threads={threads}: lfp {t_lfp:?}, model identical");
            clique_rows.push(format!(
                "  {{\"threads\": {threads}, \"least_model_ns\": {}}}",
                t_lfp.as_nanos(),
            ));
        }

        // Planner ablation at one thread: selectivity-greedy join order
        // plus positional indexes vs the PR 3 baseline (textual order,
        // full candidate scans). Host-independent, always enforced.
        let lifted = 1_000_000_000usize;
        let (t_plan, (wp, gp)) = best_of_3(|| build_ancestor(PLAN_N, PLAN_EDGES, 1, true, lifted));
        let (t_noplan, (wn, gn)) =
            best_of_3(|| build_ancestor(PLAN_N, PLAN_EDGES, 1, false, lifted));
        assert_eq!(
            gp.render(&wp),
            gn.render(&wn),
            "planner changed the instance set"
        );
        let plan_speedup = t_noplan.as_secs_f64() / t_plan.as_secs_f64().max(1e-9);
        let plan_gate = if plan_speedup >= 1.3 { "pass" } else { "fail" };
        println!(
            "B10 planner ancestor N={PLAN_N} E={PLAN_EDGES}: planned {t_plan:?} vs unplanned {t_noplan:?} \
             ({plan_speedup:.2}x) — ≥1.3x gate: {}",
            if plan_speedup >= 1.3 { "PASS" } else { "FAIL" }
        );

        let measured: Vec<String> = thread_counts.iter().map(ToString::to_string).collect();
        let json = format!(
            "{{\n\"host_cores\": {host_cores},\n\
             \"measured_thread_counts\": [{}],\n\
             \"flat\": true,\n\
             \"ancestor\": {{\"n\": {N}, \"edges\": {EDGES}, \"rows\": [\n{}\n]}},\n\
             \"defeating_cliques\": {{\"k\": {CLIQUES}, \"rows\": [\n{}\n]}},\n\
             \"planner\": {{\"planned_ns\": {}, \"unplanned_ns\": {}, \"speedup\": {plan_speedup:.2}}},\n\
             \"gates\": {{\n\
             \"parallel_8t_min\": 2.5, \"parallel_8t_speedup\": {par_speedup_json}, \"parallel_8t\": \"{par_gate}\",\n\
             \"single_thread_pr4_baseline_ns\": {PR4_LEAST_MODEL_NS}, \"single_thread_least_model_ns\": {}, \
             \"single_thread_speedup\": {flat_speedup:.2}, \"single_thread_vs_pr4\": \"{flat_gate}\",\n\
             \"planner_min\": 1.3, \"planner_speedup\": {plan_speedup:.2}, \"planner\": \"{plan_gate}\"\n\
             }},\n\
             \"models_identical\": true\n}}\n",
            measured.join(", "),
            anc_rows.join(",\n"),
            clique_rows.join(",\n"),
            t_plan.as_nanos(),
            t_noplan.as_nanos(),
            lfp_1t.as_nanos(),
        );
        match std::fs::write("BENCH_parallel.json", &json) {
            Ok(()) => println!("B10 parallel: wrote BENCH_parallel.json"),
            Err(e) => println!("B10 parallel: could not write BENCH_parallel.json: {e}"),
        }
    }

    // B11: durability — reloading a KB from its checksummed snapshot
    // (decode + install, no parsing, no grounding) vs rebuilding it
    // from source (parse + ground + re-apply the mutation history).
    // Differential check (identical least model after reload) plus an
    // acceptance gate, emitted as BENCH_durability.json:
    //   * ≥5x reload-vs-rebuild on the scaled mutation_stream KB —
    //     evaluated only when a writable tmpdir exists (a read-only
    //     filesystem cannot measure file-backed reload; the gate is
    //     then reported as SKIP with the in-memory encode/decode
    //     numbers, never as a fake PASS, mirroring the B10 <8-core
    //     convention);
    // plus per-policy logging throughput (off / on-commit / batched).
    {
        use olp_kb::{Durability, DurableKb};
        use olp_store::{decode_snapshot, encode_snapshot};

        const N_BASE: usize = 192;
        const N_MUTS: usize = 200;
        let cfg = MutationCfg {
            n_base: N_BASE,
            n_mutations: N_MUTS,
            ..MutationCfg::default()
        };
        let (base, ops) = mutation_stream(&cfg, 42);

        fn best_of_3<T>(mut f: impl FnMut() -> T) -> (Duration, T) {
            let mut best = Duration::MAX;
            let mut out = None;
            for _ in 0..3 {
                let t = Instant::now();
                let v = f();
                best = best.min(t.elapsed());
                out = Some(v);
            }
            (best, out.unwrap())
        }
        let apply = |kb: &mut Kb, ops: &[Mutation]| {
            for op in ops {
                match op {
                    Mutation::Assert { object, rule } => {
                        kb.assert_rule(object, rule).expect("assert applies")
                    }
                    Mutation::Retract { object, rule } => {
                        assert!(kb.retract_rule(object, rule).expect("retract applies"));
                    }
                }
            }
        };
        // The from-source baseline: what recovery costs WITHOUT the
        // store — parse the program, ground it, re-apply the history.
        let rebuild = || {
            let mut b = KbBuilder::new();
            b.rules("main", &base).expect("base parses");
            let mut kb = b.build(GroundStrategy::Smart).expect("base grounds");
            apply(&mut kb, &ops);
            kb
        };
        let (t_rebuild, mut reference) = best_of_3(rebuild);
        let ref_model = {
            let m = reference.model("main").expect("least model").clone();
            reference.render(&m)
        };
        println!(
            "B11 durability mutation_stream base={N_BASE} ops={N_MUTS}: \
             rebuild from source {t_rebuild:?} ({} ground instances)",
            reference.ground_program().len()
        );

        // In-memory encode/decode numbers: measurable even with no
        // writable filesystem, and reported in the SKIP line.
        let snap_bytes = encode_snapshot(
            reference.world(),
            reference.program(),
            reference.ground_program(),
            N_MUTS as u64,
        );
        let (t_decode, _) = best_of_3(|| {
            decode_snapshot(&snap_bytes, std::path::Path::new("bench.olps")).expect("decodes")
        });
        println!(
            "B11 durability: snapshot {} bytes, in-memory decode {t_decode:?}",
            snap_bytes.len()
        );

        let dir = std::env::temp_dir().join(format!("olp_bench_durability_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let writable = std::fs::create_dir_all(&dir).is_ok()
            && std::fs::write(dir.join(".probe"), b"w").is_ok();
        let mut json_extra = String::new();
        let (reload_gate, reload_speedup) = if writable {
            // Build the database once: full state in the snapshot.
            let d =
                DurableKb::create(&dir, rebuild(), Durability::OnCommit).expect("database created");
            drop(d);
            let (t_reload, mut reloaded) = best_of_3(|| {
                let (d, _) = DurableKb::open(&dir, Durability::OnCommit).expect("database opens");
                d
            });
            let m = reloaded
                .kb_mut()
                .model("main")
                .expect("least model")
                .clone();
            assert_eq!(
                ref_model,
                reloaded.kb_mut().render(&m),
                "reloaded KB's least model differs from the rebuilt one"
            );
            let speedup = t_rebuild.as_secs_f64() / t_reload.as_secs_f64().max(1e-9);
            let gate = if speedup >= 5.0 { "pass" } else { "fail" };
            println!(
                "B11 durability: reload {t_reload:?} vs rebuild {t_rebuild:?} \
                 ({speedup:.2}x, model identical) — ≥5x gate: {}",
                if speedup >= 5.0 { "PASS" } else { "FAIL" }
            );

            // Logging throughput per durability policy (fresh db per
            // policy, same op stream).
            let mut policy_rows = Vec::new();
            for (name, policy) in [
                ("off", Durability::Off),
                ("on_commit", Durability::OnCommit),
                ("batched", Durability::Batched),
            ] {
                let pdir = dir.join(name);
                let _ = std::fs::remove_dir_all(&pdir);
                let mut b = KbBuilder::new();
                b.rules("main", &base).expect("base parses");
                let kb = b.build(GroundStrategy::Smart).expect("base grounds");
                let mut d = DurableKb::create(&pdir, kb, policy).expect("database created");
                let t = Instant::now();
                for op in &ops {
                    match op {
                        Mutation::Assert { object, rule } => {
                            d.assert_rule(object, rule).expect("assert applies")
                        }
                        Mutation::Retract { object, rule } => {
                            assert!(d.retract_rule(object, rule).expect("retract applies"));
                        }
                    }
                }
                let elapsed = t.elapsed();
                let ops_per_s = N_MUTS as f64 / elapsed.as_secs_f64().max(1e-9);
                println!(
                    "B11 durability policy {name}: {N_MUTS} logged ops in {elapsed:?} \
                     ({ops_per_s:.0} ops/s)"
                );
                policy_rows.push(format!(
                    "  {{\"policy\": \"{name}\", \"ops\": {N_MUTS}, \"elapsed_ns\": {}, \"ops_per_s\": {ops_per_s:.0}}}",
                    elapsed.as_nanos(),
                ));
            }
            json_extra = format!(
                ",\n\"reload_ns\": {},\n\"policies\": [\n{}\n]",
                t_reload.as_nanos(),
                policy_rows.join(",\n"),
            );
            let _ = std::fs::remove_dir_all(&dir);
            (gate, speedup)
        } else {
            let speedup = t_rebuild.as_secs_f64() / t_decode.as_secs_f64().max(1e-9);
            println!(
                "B11 durability: ≥5x reload gate SKIP — no writable tmpdir at {}; \
                 file-backed reload is unmeasurable here (in-memory decode {t_decode:?} \
                 vs rebuild {t_rebuild:?}, {speedup:.2}x)",
                dir.display()
            );
            ("skipped_no_writable_tmpdir", speedup)
        };

        let json = format!(
            "{{\n\"workload\": \"mutation_stream\",\n\"n_base\": {N_BASE}, \"n_mutations\": {N_MUTS},\n\
             \"rebuild_ns\": {},\n\"snapshot_bytes\": {},\n\"decode_ns\": {}{json_extra},\n\
             \"gates\": {{\n\
             \"reload_min\": 5.0, \"reload_speedup\": {reload_speedup:.2}, \"reload\": \"{reload_gate}\"\n\
             }},\n\
             \"model_identical\": true\n}}\n",
            t_rebuild.as_nanos(),
            snap_bytes.len(),
            t_decode.as_nanos(),
        );
        match std::fs::write("BENCH_durability.json", &json) {
            Ok(()) => println!("B11 durability: wrote BENCH_durability.json"),
            Err(e) => println!("B11 durability: could not write BENCH_durability.json: {e}"),
        }
    }

    // B12: serving — `olp serve` under concurrent mixed read/write
    // traffic. Spawns the real `olp` binary (sibling of this
    // experiments binary in the target dir) on a mutation_stream base
    // program and drives it with the olp-workload load generator at
    // 1/4/16/64 connections, emitted as BENCH_server.json with three
    // acceptance gates:
    //   * liveness  — every connection level completes >0 ops;
    //   * no_errors — zero protocol errors across all levels;
    //   * isolation — zero per-connection epoch regressions (responses
    //     always report the epoch they evaluated against, and a
    //     connection must never observe time going backwards).
    // When the `olp` binary is not next to this one, or no writable
    // tmpdir exists for the program file, the gates are reported as
    // SKIP (never a fake PASS), mirroring the B10/B11 convention.
    {
        use olp_workload::loadgen::{run_load, LoadCfg};
        use std::io::BufRead;

        const N_BASE: usize = 64;
        const CONN_LEVELS: [usize; 4] = [1, 4, 16, 64];
        const SECS_PER_LEVEL: f64 = 1.0;

        let olp_bin = std::env::current_exe()
            .ok()
            .and_then(|p| p.parent().map(|d| d.join("olp")))
            .filter(|p| p.exists());

        let dir = std::env::temp_dir().join(format!("olp_bench_server_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (base, _) = mutation_stream(
            &MutationCfg {
                n_base: N_BASE,
                n_mutations: 0,
                ..MutationCfg::default()
            },
            42,
        );
        let program_path = dir.join("serve.olp");
        let writable = std::fs::create_dir_all(&dir).is_ok()
            && std::fs::write(&program_path, format!("module main {{\n{base}}}\n")).is_ok();

        let mut rows = Vec::new();
        let (gate, detail) = match (&olp_bin, writable) {
            (None, _) => {
                println!(
                    "B12 server: gates SKIP — no `olp` binary next to the experiments \
                     binary (build the workspace first: cargo build --release)"
                );
                ("skipped_no_olp_binary", String::new())
            }
            (Some(_), false) => {
                println!(
                    "B12 server: gates SKIP — no writable tmpdir at {} for the \
                     served program file",
                    dir.display()
                );
                ("skipped_no_writable_tmpdir", String::new())
            }
            (Some(bin), true) => {
                let mut child = std::process::Command::new(bin)
                    .arg("serve")
                    .arg(&program_path)
                    .args(["--listen", "127.0.0.1:0"])
                    .stdout(std::process::Stdio::piped())
                    .stderr(std::process::Stdio::null())
                    .spawn()
                    .expect("olp serve spawns");
                let stdout = child.stdout.take().expect("stdout piped");
                let mut lines = std::io::BufReader::new(stdout).lines();
                let addr: std::net::SocketAddr = loop {
                    match lines.next() {
                        Some(Ok(line)) => {
                            if let Some(a) = line.strip_prefix("listening on ") {
                                break a.trim().parse().expect("listen address parses");
                            }
                        }
                        _ => panic!("olp serve exited before printing its listen address"),
                    }
                };
                std::thread::spawn(move || for _ in lines {});

                let mut total_errors = 0u64;
                let mut total_regressions = 0u64;
                let mut all_live = true;
                for conns in CONN_LEVELS {
                    let cfg = LoadCfg {
                        conns,
                        duration: Duration::from_secs_f64(SECS_PER_LEVEL),
                        write_ratio: 0.1,
                        seed: 42,
                        n_base: N_BASE,
                        ..LoadCfg::default()
                    };
                    let rep = run_load(addr, &cfg);
                    total_errors += rep.errors;
                    total_regressions += rep.epoch_regressions;
                    all_live &= rep.ops > 0;
                    println!("B12 server conns={conns}: {}", rep.summary());
                    rows.push(format!(
                        "  {{\"conns\": {conns}, \"ops\": {}, \"reads\": {}, \"writes\": {}, \
                         \"busy\": {}, \"errors\": {}, \"epoch_regressions\": {}, \
                         \"throughput_ops_per_sec\": {:.1}, \
                         \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
                        rep.ops,
                        rep.reads,
                        rep.writes,
                        rep.busy,
                        rep.errors,
                        rep.epoch_regressions,
                        rep.throughput(),
                        rep.latency_us(0.5),
                        rep.latency_us(0.99),
                        rep.max_latency_us(),
                    ));
                }

                // Shut the server down over its own protocol; fall
                // back to kill if the socket is gone.
                if let Ok(mut s) = std::net::TcpStream::connect(addr) {
                    use std::io::Write as _;
                    let _ = s.write_all(b"{\"cmd\":\"shutdown\"}\n");
                    let mut resp = String::new();
                    let _ = std::io::BufReader::new(&s).read_line(&mut resp);
                } else {
                    let _ = child.kill();
                }
                let _ = child.wait();

                let ok = all_live && total_errors == 0 && total_regressions == 0;
                println!(
                    "B12 server: liveness {} / no_errors {} ({total_errors}) / \
                     isolation {} ({total_regressions} regressions)",
                    if all_live { "PASS" } else { "FAIL" },
                    if total_errors == 0 { "PASS" } else { "FAIL" },
                    if total_regressions == 0 {
                        "PASS"
                    } else {
                        "FAIL"
                    },
                );
                (
                    if ok { "pass" } else { "fail" },
                    format!(
                        "\"total_errors\": {total_errors}, \
                         \"total_epoch_regressions\": {total_regressions}, "
                    ),
                )
            }
        };
        let _ = std::fs::remove_dir_all(&dir);

        let json = format!(
            "{{\n\"workload\": \"loadgen mixed 10% writes over mutation_stream base\",\n\
             \"n_base\": {N_BASE}, \"secs_per_level\": {SECS_PER_LEVEL},\n\
             \"levels\": [\n{}\n],\n\
             \"gates\": {{\n{detail}\"liveness_no_errors_isolation\": \"{gate}\"\n}}\n}}\n",
            rows.join(",\n"),
        );
        match std::fs::write("BENCH_server.json", &json) {
            Ok(()) => println!("B12 server: wrote BENCH_server.json"),
            Err(e) => println!("B12 server: could not write BENCH_server.json: {e}"),
        }
    }

    // B13: analysis-guided evaluation — the semantic profile proves the
    // taxonomy view stratified and single-model, so `stable` collapses
    // to the least model instead of enumerating assumption-free models.
    // Emitted as BENCH_analysis.json with two gates:
    //   * identical  — the guided stable set is byte-identical to the
    //     general engine's (the fast path may never change an answer);
    //   * speedup    — guided `stable` is ≥1.3x faster than the general
    //     engine on this provably-stratified workload.
    // If the analyzer fails to prove the workload single-model the
    // gates are reported as SKIP (never a fake PASS): a weaker analysis
    // must show up as lost coverage, not as a fabricated speedup.
    {
        const N_SPECIES: usize = 512;
        const N_LAYERS: usize = 4;
        const SPEEDUP_GATE: f64 = 1.3;

        let build = |guided: bool| -> Kb {
            let mut w = World::new();
            let prog = taxonomy_chain(&mut w, N_SPECIES, N_LAYERS);
            let mut kb = KbBuilder::from_parts(w, prog)
                .build_with(GroundStrategy::Smart, &GroundConfig::default())
                .expect("taxonomy grounds");
            kb.set_profile_guided(guided);
            kb.set_threads(1);
            kb
        };

        let profile = build(true)
            .component_profile("layer0")
            .expect("layer0 exists")
            .expect("chain order is valid");
        let summary = profile.summary();
        println!("B13 analysis taxonomy S={N_SPECIES} L={N_LAYERS}: profile {summary}");

        let timed_stable = |guided: bool| -> (Duration, Vec<String>) {
            let mut best = Duration::MAX;
            let mut rendered = Vec::new();
            for _ in 0..3 {
                let mut kb = build(guided);
                let t = Instant::now();
                let models = kb.stable("layer0").expect("layer0 exists");
                best = best.min(t.elapsed());
                rendered = models.iter().map(|m| kb.render(m)).collect();
                rendered.sort();
            }
            (best, rendered)
        };

        let (gate, detail) = if !(profile.single_model && profile.order_relevant) {
            println!(
                "B13 analysis: gates SKIP — the analyzer no longer proves the taxonomy \
                 view single-model ({summary}); nothing honest to time"
            );
            ("skipped_profile_not_single_model", String::new())
        } else {
            let (t_guided, m_guided) = timed_stable(true);
            let (t_general, m_general) = timed_stable(false);
            let identical = m_guided == m_general && m_guided.len() == 1;
            let speedup = t_general.as_secs_f64() / t_guided.as_secs_f64().max(1e-9);
            println!(
                "B13 analysis stable layer0: guided {t_guided:?} vs general {t_general:?} \
                 ({speedup:.2}x) — identical {} / ≥{SPEEDUP_GATE}x gate: {}",
                if identical { "PASS" } else { "FAIL" },
                if speedup >= SPEEDUP_GATE {
                    "PASS"
                } else {
                    "FAIL"
                },
            );
            let ok = identical && speedup >= SPEEDUP_GATE;
            (
                if ok { "pass" } else { "fail" },
                format!(
                    "\"guided_us\": {}, \"general_us\": {}, \"speedup\": {speedup:.2}, \
                     \"stable_models\": {}, \"identical\": {identical}, ",
                    t_guided.as_micros(),
                    t_general.as_micros(),
                    m_guided.len(),
                ),
            )
        };
        let json = format!(
            "{{\n\"workload\": \"taxonomy_chain stratified exceptions\",\n\
             \"n_species\": {N_SPECIES}, \"n_layers\": {N_LAYERS},\n\
             \"profile\": \"{summary}\",\n\
             \"gates\": {{\n{detail}\"identical_and_speedup_{SPEEDUP_GATE}x\": \"{gate}\"\n}}\n}}\n",
        );
        match std::fs::write("BENCH_analysis.json", &json) {
            Ok(()) => println!("B13 analysis: wrote BENCH_analysis.json"),
            Err(e) => println!("B13 analysis: could not write BENCH_analysis.json: {e}"),
        }
    }
}
