//! Parallel-regression smoke test for CI: the scaled ancestor workload
//! at 1 and 2 threads, asserting that going wide is never a cliff.
//!
//! PR 4's stratum-wavefront made `--threads 8` 1.6x *slower* than
//! `--threads 1` and nobody noticed until the numbers were published.
//! This binary is the tripwire: it runs end-to-end (ground + least
//! model) at 1 and 2 threads and **fails (exit 1) if the 2-thread run
//! exceeds 1.15x the 1-thread time** — parallel evaluation may win or
//! tie, it must not regress. The differential model check runs in both
//! configurations either way.
//!
//! On hosts with fewer than 2 physical cores the timing assertion is
//! reported as SKIP and the exit code stays 0 (a 1-core box cannot
//! measure parallel overhead honestly), mirroring the BENCH_parallel
//! gate convention. Set `OLP_PERF_SMOKE_FORCE=1` to assert anyway.
//!
//! A second, single-threaded case guards the **mutation path**: a
//! mutation stream replayed with a model read after every step, with
//! arenas maintained in place (`FlatView::apply_delta` + flat delta
//! revalidation) vs the pre-patching behaviour of dropping the arena
//! cache on every commit and reflattening from scratch. The patched
//! path must not be slower than clear+reflatten (small tolerance for
//! timer noise); it needs no second core, so it is asserted on every
//! host.
//!
//! A third case guards the **analysis-guided fast path** (experiment
//! B13): on the stratified taxonomy workload the semantic profile
//! proves the view single-model, so `stable` must collapse to the
//! least model and beat the general enumeration by ≥1.3x — with
//! byte-identical results. If the analyzer stops proving the workload
//! single-model, that is reported as FAIL too (lost fast-path
//! coverage is a perf regression, not a skip).

use olp_core::{CompId, World};
use olp_ground::{ground_smart, GroundConfig, GroundProgram};
use olp_kb::{GroundStrategy, Kb, KbBuilder};
use olp_parser::parse_program;
use olp_semantics::{flatten, least_model_flat, least_model_parallel, View};
use olp_workload::{ancestor, mutation_stream, taxonomy_chain, GraphShape, Mutation, MutationCfg};
use std::time::{Duration, Instant};

const N: usize = 220;
const EDGES: usize = 660;
/// Allowed 2-thread overhead over the 1-thread run.
const MAX_RATIO: f64 = 1.15;
/// Base chain length for the mutation-path case.
const MUT_N_BASE: usize = 128;
/// Allowed patched-arena overhead over clear+reflatten: patching may
/// win big or tie, it must never regress the mutation path.
const MAX_MUT_RATIO: f64 = 1.10;
/// Taxonomy size for the analysis fast-path case (experiment B13).
const TAX_SPECIES: usize = 512;
const TAX_LAYERS: usize = 4;
/// Required speedup of profile-guided `stable` over the general
/// engine on the provably single-model taxonomy view (B13 gate;
/// measured ~5x, gated loosely against timer noise).
const MIN_ANALYSIS_SPEEDUP: f64 = 1.3;

fn build(threads: usize) -> (World, GroundProgram) {
    let mut w = World::new();
    let p = ancestor(
        &mut w,
        GraphShape::Random {
            edges: EDGES,
            seed: 42,
        },
        N,
    );
    let cfg = GroundConfig {
        threads,
        ..GroundConfig::default()
    };
    let g = ground_smart(&mut w, &p, &cfg).expect("ancestor grounds");
    (w, g)
}

fn end_to_end(threads: usize) -> (Duration, String) {
    let mut best = Duration::MAX;
    let mut model = String::new();
    for _ in 0..3 {
        let t = Instant::now();
        let (w, g) = build(threads);
        let view = View::new(&g, CompId(0));
        let m = if threads == 1 {
            least_model_flat(&flatten(&view))
        } else {
            least_model_parallel(&view, threads)
        };
        best = best.min(t.elapsed());
        model = m.render(&w);
    }
    (best, model)
}

/// A warm single-object KB over the mutation-stream base chain.
fn build_mut_kb() -> Kb {
    let (base, _) = mutation_stream(
        &MutationCfg {
            n_base: MUT_N_BASE,
            ..MutationCfg::default()
        },
        7,
    );
    let mut w = World::new();
    let prog = parse_program(&mut w, &base).expect("generated program parses");
    let mut kb = KbBuilder::from_parts(w, prog)
        .build_with(GroundStrategy::Smart, &GroundConfig::default())
        .expect("chain programs ground");
    kb.set_threads(1);
    let _ = kb.model("main").expect("main exists");
    kb
}

/// Replays the stream with a model read per step; `reflatten` drops
/// the compiled-arena cache before every mutation (the pre-patching
/// commit behaviour). Returns best-of-3 time and the final model.
fn mutation_path(reflatten: bool) -> (Duration, String) {
    let (_, muts) = mutation_stream(
        &MutationCfg {
            n_base: MUT_N_BASE,
            ..MutationCfg::default()
        },
        7,
    );
    let mut best = Duration::MAX;
    let mut model = String::new();
    for _ in 0..3 {
        let mut kb = build_mut_kb();
        let t = Instant::now();
        for m in &muts {
            if reflatten {
                kb.clear_flat_cache();
            }
            match m {
                Mutation::Assert { object, rule } => {
                    kb.assert_rule(object, rule).expect("assert grounds");
                }
                Mutation::Retract { object, rule } => {
                    kb.retract_rule(object, rule).expect("retract grounds");
                }
            }
            let _ = kb.model(m.object()).expect("object exists");
        }
        best = best.min(t.elapsed());
        let m = kb.model("main").expect("main exists").clone();
        model = kb.render(&m);
    }
    (best, model)
}

/// Best-of-3 `stable("layer0")` on the taxonomy workload, with the
/// analysis-guided fast paths on or off. Fresh KB per run so neither
/// configuration benefits from the other's caches.
fn analysis_stable(guided: bool) -> (Duration, Vec<String>) {
    let mut best = Duration::MAX;
    let mut rendered = Vec::new();
    for _ in 0..3 {
        let mut w = World::new();
        let prog = taxonomy_chain(&mut w, TAX_SPECIES, TAX_LAYERS);
        let mut kb = KbBuilder::from_parts(w, prog)
            .build_with(GroundStrategy::Smart, &GroundConfig::default())
            .expect("taxonomy grounds");
        kb.set_profile_guided(guided);
        kb.set_threads(1);
        let t = Instant::now();
        let models = kb.stable("layer0").expect("layer0 exists");
        best = best.min(t.elapsed());
        rendered = models.iter().map(|m| kb.render(m)).collect();
        rendered.sort();
    }
    (best, rendered)
}

fn main() {
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (t1, m1) = end_to_end(1);
    let (t2, m2) = end_to_end(2);
    assert_eq!(m1, m2, "least model differs between 1 and 2 threads");
    let ratio = t2.as_secs_f64() / t1.as_secs_f64().max(1e-9);
    println!(
        "perf-smoke ancestor N={N} E={EDGES}: 1t {t1:?}, 2t {t2:?} ({ratio:.2}x), models identical"
    );

    // Mutation path: patched arenas vs clear+reflatten. Differential
    // and timing checks are both host-independent (single-threaded).
    let (t_patched, m_patched) = mutation_path(false);
    let (t_reflat, m_reflat) = mutation_path(true);
    assert_eq!(
        m_patched, m_reflat,
        "final model differs between patched and reflattened arenas"
    );
    let mut_ratio = t_patched.as_secs_f64() / t_reflat.as_secs_f64().max(1e-9);
    println!(
        "perf-smoke mutation n_base={MUT_N_BASE}: patched {t_patched:?} vs \
         clear+reflatten {t_reflat:?} ({mut_ratio:.2}x), models identical"
    );
    if mut_ratio > MAX_MUT_RATIO {
        eprintln!(
            "perf-smoke: FAIL — patched-arena revalidation took {mut_ratio:.2}x the \
             clear+reflatten time (limit {MAX_MUT_RATIO}); the mutation path has regressed"
        );
        std::process::exit(1);
    }
    println!("perf-smoke: mutation-path ratio {mut_ratio:.2} within {MAX_MUT_RATIO}");

    // Analysis fast path (B13): profile-guided stable must match the
    // general engine and beat it. Single-threaded, asserted everywhere.
    let (t_guided, m_guided) = analysis_stable(true);
    let (t_general, m_general) = analysis_stable(false);
    assert_eq!(
        m_guided, m_general,
        "guided stable set differs from the general engine"
    );
    let speedup = t_general.as_secs_f64() / t_guided.as_secs_f64().max(1e-9);
    println!(
        "perf-smoke analysis taxonomy S={TAX_SPECIES} L={TAX_LAYERS}: guided {t_guided:?} vs \
         general {t_general:?} ({speedup:.2}x), stable sets identical"
    );
    if speedup < MIN_ANALYSIS_SPEEDUP {
        eprintln!(
            "perf-smoke: FAIL — profile-guided stable is only {speedup:.2}x the general \
             engine (need ≥{MIN_ANALYSIS_SPEEDUP}x); the analysis fast path has regressed"
        );
        std::process::exit(1);
    }
    println!("perf-smoke: analysis fast-path speedup {speedup:.2}x meets ≥{MIN_ANALYSIS_SPEEDUP}x");

    let force = std::env::var("OLP_PERF_SMOKE_FORCE").is_ok_and(|v| v == "1");
    if host_cores < 2 && !force {
        println!(
            "perf-smoke: SKIP timing assertion — host has {host_cores} core(s); \
             2-thread overhead is unmeasurable here"
        );
        return;
    }
    if ratio > MAX_RATIO {
        eprintln!(
            "perf-smoke: FAIL — 2 threads took {ratio:.2}x the 1-thread time \
             (limit {MAX_RATIO}); parallel evaluation has regressed"
        );
        std::process::exit(1);
    }
    println!("perf-smoke: PASS — 2t/1t ratio {ratio:.2} within {MAX_RATIO}");
}
