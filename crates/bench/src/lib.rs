//! # olp-bench — shared harness code for the benchmark suite and the
//! experiments binary.
//!
//! The Criterion benches (one per figure/experiment, see DESIGN.md §4)
//! and `src/bin/experiments.rs` (which regenerates the measured column
//! of EXPERIMENTS.md) share these setup helpers.

use olp_core::{CompId, OrderedProgram, World};
use olp_ground::{ground_exhaustive, ground_smart, GroundConfig, GroundProgram};
use olp_parser::parse_program;

/// Bundles a parsed + grounded program for benching.
pub struct Bench {
    /// The interners.
    pub world: World,
    /// The source program.
    pub prog: OrderedProgram,
    /// Its grounding.
    pub ground: GroundProgram,
}

/// Parses and grounds `src` with the exhaustive grounder.
pub fn setup_exhaustive(src: &str) -> Bench {
    let mut world = World::new();
    let prog = parse_program(&mut world, src).expect("parses");
    let ground = ground_exhaustive(&mut world, &prog, &GroundConfig::default()).expect("grounds");
    Bench {
        world,
        prog,
        ground,
    }
}

/// Grounds an already-built program with the smart grounder.
pub fn ground_built_smart(world: &mut World, prog: &OrderedProgram) -> GroundProgram {
    ground_smart(world, prog, &big_config()).expect("grounds")
}

/// Grounds an already-built program with the exhaustive grounder.
pub fn ground_built_exhaustive(world: &mut World, prog: &OrderedProgram) -> GroundProgram {
    ground_exhaustive(world, prog, &big_config()).expect("grounds")
}

/// A grounding config with headroom for the larger benchmark sizes.
pub fn big_config() -> GroundConfig {
    GroundConfig {
        max_depth: 2,
        max_terms: 1_000_000,
        max_instances: 200_000_000,
        ..Default::default()
    }
}

/// Looks up a component by name.
pub fn comp(b: &Bench, name: &str) -> CompId {
    b.prog
        .component_by_name(b.world.syms.get(name).expect("name"))
        .expect("component")
}

/// The Fig. 1 source, reused by benches and experiments.
pub const FIG1_SRC: &str = "module c2 {
    bird(penguin). bird(pigeon).
    fly(X) :- bird(X).
    -ground_animal(X) :- bird(X).
 }
 module c1 < c2 {
    ground_animal(penguin).
    -fly(X) :- ground_animal(X).
 }";

/// The Fig. 2 source.
pub const FIG2_SRC: &str = "module c3 { rich(mimmo). -poor(X) :- rich(X). }
 module c2 { poor(mimmo). -rich(X) :- poor(X). }
 module c1 < c2, c3 { free_ticket(X) :- poor(X). }";

/// The Fig. 3 source with a facts placeholder.
pub fn fig3_src(facts: &str) -> String {
    format!(
        "module expert2 {{ take_loan :- inflation(X), X > 11. }}
         module expert4 {{ -take_loan :- loan_rate(X), X > 14. }}
         module expert3 < expert4 {{
             take_loan :- inflation(X), loan_rate(Y), X > Y + 2.
         }}
         module myself < expert2, expert3 {{ {facts} }}"
    )
}

/// A win/move game program over a chain with a draw cycle at the end —
/// the canonical WFS workload for the `wfs_vs_ordered` bench.
pub fn win_move_src(n: usize) -> String {
    let mut s = String::new();
    for i in 1..n {
        s.push_str(&format!("move(n{},n{}).\n", i - 1, i));
    }
    // Draw cycle.
    s.push_str(&format!("move(n{},n{}).\n", n - 1, n));
    s.push_str(&format!("move(n{},n{}).\n", n, n - 1));
    s.push_str("win(X) :- move(X,Y), -win(Y).\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use olp_semantics::{least_model, View};

    #[test]
    fn fig_sources_work() {
        let b1 = setup_exhaustive(FIG1_SRC);
        assert!(!least_model(&View::new(&b1.ground, comp(&b1, "c1"))).is_empty());
        let b2 = setup_exhaustive(FIG2_SRC);
        assert!(least_model(&View::new(&b2.ground, comp(&b2, "c1"))).is_empty());
        let b3 = setup_exhaustive(&fig3_src("inflation(12)."));
        assert!(!least_model(&View::new(&b3.ground, comp(&b3, "myself"))).is_empty());
    }

    #[test]
    fn win_move_generates() {
        let b = setup_exhaustive(&win_move_src(4));
        assert!(b.ground.len() > 4);
    }
}
