//! Experiment E3/B2 — Fig. 2 (defeating) at scale.
//!
//! Workload: `defeating_pairs(N)` — N incomparable pro/con component
//! pairs asserting contradictory facts, all inherited by one consumer.
//! The consumer's least model is empty (everything defeats), so the
//! engine does maximal attack bookkeeping for zero derivations — the
//! worst case for the defeat machinery.
//!
//! Measured:
//! * `consumer_least_model/N` — fixpoint in the consumer's view (all
//!   2N+1 components);
//! * `expert_least_model/N` — fixpoint in one expert's own view
//!   (constant-size) as the baseline;
//! * `order_closure/N` — transitive-closure cost of the 2N+1-component
//!   poset.
//!
//! Expected shape: consumer cost grows linearly in N while remaining
//! sublinear against the naive all-pairs attack scan (precomputed
//! attacker lists, ablation #4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use olp_bench::ground_built_smart;
use olp_core::{CompId, World};
use olp_semantics::{least_model, View};
use olp_workload::defeating_pairs;
use std::hint::black_box;
use std::time::Duration;

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_defeating");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for &n in &[16usize, 64, 256] {
        let mut world = World::new();
        let prog = defeating_pairs(&mut world, n);
        let ground = ground_built_smart(&mut world, &prog);
        let consumer = CompId(0);
        let one_expert = CompId(1);

        group.bench_with_input(BenchmarkId::new("consumer_least_model", n), &n, |b, _| {
            let view = View::new(&ground, consumer);
            b.iter(|| {
                let m = least_model(&view);
                assert!(m.is_empty(), "defeating must suppress everything");
                black_box(m)
            });
        });
        group.bench_with_input(BenchmarkId::new("expert_least_model", n), &n, |b, _| {
            let view = View::new(&ground, one_expert);
            b.iter(|| black_box(least_model(&view)));
        });
        group.bench_with_input(BenchmarkId::new("order_closure", n), &n, |b, _| {
            b.iter(|| black_box(prog.order().unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
