//! Experiment B7 — transformation overhead and the §3 size claim.
//!
//! The paper notes that `OV(C)` in reduced (non-ground) form is
//! *polynomially bounded* in the size of `C` — one CWA rule per
//! predicate instead of one fact per Herbrand-base element. This bench
//! measures:
//!
//! * `build_ov/P`, `build_ev/P`, `build_3v/P` — transformation
//!   construction time for programs with P predicates;
//! * `ground_ov_reduced/P` vs `ground_ov_groundcwa/P` — ablation #5:
//!   grounding the reduced (non-ground) CWA encoding against an
//!   explicitly pre-grounded CWA component (same semantics, the size
//!   blow-up paid at build time instead).
//!
//! Expected shape: construction is linear in P; the reduced form's
//! source size is O(P) while the ground CWA form is O(P · |HU|) — both
//! ground to the same instance count, so grounding time converges, and
//! the win is in program size and build time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use olp_core::{Literal, Rule, Term, World};
use olp_ground::{ground_exhaustive, GroundConfig};
use olp_transform::{
    extended_version, ordered_version, ordered_version_ground_cwa, three_level_version,
};
use std::hint::black_box;
use std::time::Duration;

/// A seminegative program with `p` predicates over `k` constants:
/// facts for predicate 0, a copy chain `pi(X) ← p(i-1)(X)`.
fn chain_program(world: &mut World, preds: usize, consts: usize) -> Vec<Rule> {
    let mut rules = Vec::new();
    for c in 0..consts {
        let cn = world.syms.intern(&format!("c{c}"));
        let p0 = world.pred("p0", 1);
        rules.push(Rule::fact(Literal::pos(p0, vec![Term::Const(cn)])));
    }
    let x = Term::Var(world.syms.intern("X"));
    for i in 1..preds {
        let hi = world.pred(&format!("p{i}"), 1);
        let lo = world.pred(&format!("p{}", i - 1), 1);
        rules.push(Rule::new(
            Literal::pos(hi, vec![x.clone()]),
            vec![olp_core::BodyItem::Lit(Literal::pos(lo, vec![x.clone()]))],
        ));
    }
    rules
}

fn bench_transform(c: &mut Criterion) {
    let mut group = c.benchmark_group("transform");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let consts = 16;
    for &preds in &[8usize, 32, 128] {
        let mut world = World::new();
        let rules = chain_program(&mut world, preds, consts);

        group.bench_with_input(BenchmarkId::new("build_ov", preds), &preds, |b, _| {
            b.iter(|| {
                let mut w = world.clone();
                black_box(ordered_version(&mut w, &rules))
            });
        });
        group.bench_with_input(BenchmarkId::new("build_ev", preds), &preds, |b, _| {
            b.iter(|| {
                let mut w = world.clone();
                black_box(extended_version(&mut w, &rules))
            });
        });
        group.bench_with_input(BenchmarkId::new("build_3v", preds), &preds, |b, _| {
            b.iter(|| {
                let mut w = world.clone();
                black_box(three_level_version(&mut w, &rules))
            });
        });

        let gc = GroundConfig::default();
        group.bench_with_input(
            BenchmarkId::new("ground_ov_reduced", preds),
            &preds,
            |b, _| {
                b.iter(|| {
                    let mut w = world.clone();
                    let (ov, _) = ordered_version(&mut w, &rules);
                    black_box(ground_exhaustive(&mut w, &ov, &gc).unwrap())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("ground_ov_groundcwa", preds),
            &preds,
            |b, _| {
                b.iter(|| {
                    let mut w = world.clone();
                    let consts_syms: Vec<olp_core::Sym> = (0..consts)
                        .map(|k| w.syms.intern(&format!("c{k}")))
                        .collect();
                    let (ov, _) = ordered_version_ground_cwa(&mut w, &rules, &consts_syms);
                    black_box(ground_exhaustive(&mut w, &ov, &gc).unwrap())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_transform);
criterion_main!(benches);
