//! Experiment E1/B1 — Fig. 1 (overruling) at scale.
//!
//! Workload: `taxonomy_chain(N, 4)` — N species under a 4-deep chain of
//! exception layers (exceptions-to-exceptions). Measured:
//!
//! * `least_model/N` — the incremental worklist `V` fixpoint in the
//!   most specific component;
//! * `least_model_naive/N` — ablation #2 (DESIGN.md §5): the full-pass
//!   transcription of Definition 4;
//! * `view_build/N` — ablation #4: attacker-list precomputation cost;
//! * `ground_smart/N` vs `ground_exhaustive/N` — ablation #3;
//! * `prove_one_query/N` — the goal-directed prover answering a single
//!   species query over its constant-size relevance cone.
//!
//! Expected shape: the incremental engine is linear in the ground view
//! and beats the naive engine by a growing factor; smart grounding
//! beats exhaustive by an order of magnitude already at N = 256
//! (instantiation over derivable atoms only).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use olp_bench::{big_config, ground_built_smart};
use olp_core::{Budget, CompId, World};
use olp_ground::ground_exhaustive;
use olp_parser::parse_ground_literal;
use olp_semantics::{least_model, least_model_budgeted, least_model_naive, prove, View};
use olp_workload::taxonomy_chain;
use std::hint::black_box;
use std::time::Duration;

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_overruling");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for &n in &[64usize, 256, 1024] {
        // Shared setup (outside the timed region).
        let mut world = World::new();
        let prog = taxonomy_chain(&mut world, n, 4);
        let ground = ground_built_smart(&mut world, &prog);
        let most_specific = CompId(0);

        group.bench_with_input(BenchmarkId::new("least_model", n), &n, |b, _| {
            let view = View::new(&ground, most_specific);
            b.iter(|| black_box(least_model(&view)));
        });
        // Governor overhead guard: the same fixpoint under a generous
        // budget (never trips, so the entire delta is tick accounting).
        // Target: within 5% of the unbudgeted `least_model` at N = 256.
        group.bench_with_input(BenchmarkId::new("budget_overhead", n), &n, |b, _| {
            let view = View::new(&ground, most_specific);
            let budget = Budget::with_steps(u64::MAX);
            b.iter(|| black_box(least_model_budgeted(&view, &budget)));
        });
        if n <= 256 {
            group.bench_with_input(BenchmarkId::new("least_model_naive", n), &n, |b, _| {
                let view = View::new(&ground, most_specific);
                b.iter(|| black_box(least_model_naive(&view)));
            });
        }
        // Goal-directed single query vs materialising the whole model:
        // the relevance cone of one species is constant-size.
        group.bench_with_input(BenchmarkId::new("prove_one_query", n), &n, |b, _| {
            let view = View::new(&ground, most_specific);
            let mut w = world.clone();
            let q = parse_ground_literal(&mut w, "fly(s0)").unwrap();
            b.iter(|| black_box(prove(&view, q)));
        });
        group.bench_with_input(BenchmarkId::new("view_build", n), &n, |b, _| {
            b.iter(|| black_box(View::new(&ground, most_specific)));
        });
        group.bench_with_input(BenchmarkId::new("ground_smart", n), &n, |b, _| {
            b.iter(|| {
                let mut w = world.clone();
                black_box(ground_built_smart(&mut w, &prog))
            });
        });
        if n <= 256 {
            group.bench_with_input(BenchmarkId::new("ground_exhaustive", n), &n, |b, _| {
                b.iter(|| {
                    let mut w = world.clone();
                    black_box(ground_exhaustive(&mut w, &prog, &big_config()).unwrap())
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
