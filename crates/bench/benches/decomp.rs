//! Experiment B8 — component-wise evaluation: monolithic engines vs
//! SCC-condensation / product-form enumeration.
//!
//! Workload: [`olp_workload::defeating_cliques`] — k disjoint 3-atom
//! choice cliques (`p_i.` vs `-p_i.` from incomparable modules, plus
//! `q_i ← p_i` and `r_i ← -p_i` in the consumer). The dependency graph
//! splits into k independent groups and unit propagation is powerless
//! inside each clique, so:
//!
//! * `af_monolithic` / `stable_monolithic` — the propagating search
//!   interleaves the per-clique choices: its tree (and for stable, the
//!   quadratic maximality filter) grows with the *product* of
//!   per-clique model counts;
//! * `af_decomposed` / `stable_decomposed` — each clique is solved
//!   separately (constant-size search, constant-size maximality
//!   filter) and the per-clique model sets are combined as a cartesian
//!   product — the exponential part is reduced to materialising the
//!   answer.
//!
//! Expected shape: the decomposed engines win by a factor that grows
//! with k (the acceptance gate checked by `experiments` is ≥10x on the
//! stable enumeration at k = 6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use olp_core::{Budget, World};
use olp_ground::{ground_exhaustive, GroundConfig};
use olp_semantics::{
    enumerate_assumption_free_decomposed, enumerate_assumption_free_propagating,
    stable_models_decomposed, stable_models_monolithic_budgeted, View,
};
use olp_workload::defeating_cliques;
use std::hint::black_box;
use std::time::Duration;

fn bench_decomp(c: &mut Criterion) {
    let mut group = c.benchmark_group("decomp");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for &k in &[2usize, 4, 6] {
        let mut world = World::new();
        let prog = defeating_cliques(&mut world, k);
        let ground = ground_exhaustive(&mut world, &prog, &GroundConfig::default()).unwrap();
        let consumer = olp_core::CompId(0);
        let n = ground.n_atoms;

        group.bench_with_input(BenchmarkId::new("af_monolithic", k), &k, |b, _| {
            let view = View::new(&ground, consumer);
            b.iter(|| black_box(enumerate_assumption_free_propagating(&view, n)));
        });
        group.bench_with_input(BenchmarkId::new("af_decomposed", k), &k, |b, _| {
            let view = View::new(&ground, consumer);
            b.iter(|| black_box(enumerate_assumption_free_decomposed(&view, n)));
        });
        group.bench_with_input(BenchmarkId::new("stable_monolithic", k), &k, |b, _| {
            let view = View::new(&ground, consumer);
            b.iter(|| {
                black_box(
                    stable_models_monolithic_budgeted(&view, n, &Budget::unlimited(), None)
                        .into_value(),
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("stable_decomposed", k), &k, |b, _| {
            let view = View::new(&ground, consumer);
            b.iter(|| black_box(stable_models_decomposed(&view, n)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decomp);
criterion_main!(benches);
