//! Experiment B6 — well-founded semantics vs the ordered least model.
//!
//! Workload: the win/move game (a chain with a draw cycle — the
//! canonical program where WFS leaves atoms undefined). Three ways to
//! compute a 3-valued verdict for the same program:
//!
//! * `wfs_alternating` — the classical alternating fixpoint of `Γ²`;
//! * `ordered_ov_lfp` — the `V` fixpoint of `OV(C)` in `C` (the
//!   paper's CWA reading; note: NOT equal to WFS in general — it is
//!   the least assumption-free model, more cautious);
//! * `ordered_ev_lfp` — the `V` fixpoint of `EV(C)` (reflexive rules
//!   suppress CWA defaults: maximally cautious).
//!
//! Expected shape: **WFS wins this comparison.** The alternating
//! fixpoint converges in a handful of `Γ` steps over the small NAF
//! ground program, while the ordered readings pay for their
//! generality twice — the transformed programs ground to several times
//! more instances (CWA instances plus attack bookkeeping), and the `V`
//! engine maintains overruler/defeater counters WFS never needs. The
//! honest take-away is the *price of generality*: ordered logic
//! subsumes WFS-adjacent semantics but is not a drop-in replacement
//! for a specialised WFS engine on plain NAF programs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use olp_bench::win_move_src;
use olp_classic::{well_founded_model, NafProgram};
use olp_core::World;
use olp_ground::{ground_smart, GroundConfig};
use olp_parser::parse_program;
use olp_semantics::{least_model, View};
use olp_transform::{extended_version, ordered_version};
use std::hint::black_box;
use std::time::Duration;

fn bench_wfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("wfs_vs_ordered");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for &n in &[16usize, 64, 256] {
        let src = win_move_src(n);
        let gc = GroundConfig::default();

        let mut world = World::new();
        let flat = parse_program(&mut world, &src).unwrap();
        let rules = flat.components[0].rules.clone();
        let flat_ground = ground_smart(&mut world, &flat, &gc).unwrap();
        let naf = NafProgram::from_ground(&flat_ground).unwrap();

        let (ov_prog, ov_c) = ordered_version(&mut world, &rules);
        let ov = ground_smart(&mut world, &ov_prog, &gc).unwrap();
        let (ev_prog, ev_c) = extended_version(&mut world, &rules);
        let ev = ground_smart(&mut world, &ev_prog, &gc).unwrap();

        group.bench_with_input(BenchmarkId::new("wfs_alternating", n), &n, |b, _| {
            b.iter(|| black_box(well_founded_model(&naf)));
        });
        group.bench_with_input(BenchmarkId::new("ordered_ov_lfp", n), &n, |b, _| {
            let view = View::new(&ov, ov_c);
            b.iter(|| black_box(least_model(&view)));
        });
        group.bench_with_input(BenchmarkId::new("ordered_ev_lfp", n), &n, |b, _| {
            let view = View::new(&ev, ev_c);
            b.iter(|| black_box(least_model(&view)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_wfs);
criterion_main!(benches);
