//! Experiment E8/B4 — Example 6 (ancestor over a database relation).
//!
//! Workload: the recursive `anc` program over chain / binary-tree
//! `parent` relations of N nodes. Measured:
//!
//! * `ground_smart/shape/N` vs `ground_exhaustive/shape/N` — ablation
//!   #3: join-based relevance-restricted grounding against full
//!   `|HU|^k` instantiation (k = 3 for the recursive rule, so
//!   exhaustive is N³ and is capped at small N);
//! * `ordered_fixpoint/shape/N` — the ordered engine computing the
//!   least model of the (positive) ground program;
//! * `classical_tp/shape/N` — the classical `T_P` semi-naive baseline
//!   on the same ground rules: the price of the ordered machinery on
//!   plain Datalog.
//!
//! Expected shape: smart grounding ~O(|anc| · degree); exhaustive N³;
//! the ordered fixpoint tracks `T_P` within a small constant factor
//! (attack lists are empty for positive programs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use olp_bench::{big_config, ground_built_smart};
use olp_classic::{least_model_positive, NafProgram};
use olp_core::{CompId, World};
use olp_ground::ground_exhaustive;
use olp_semantics::{least_model, View};
use olp_workload::{ancestor, GraphShape};
use std::hint::black_box;
use std::time::Duration;

fn bench_ancestor(c: &mut Criterion) {
    let mut group = c.benchmark_group("ancestor");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for (shape, label) in [
        (GraphShape::Chain, "chain"),
        (GraphShape::BinaryTree, "tree"),
    ] {
        for &n in &[32usize, 128] {
            let mut world = World::new();
            let prog = ancestor(&mut world, shape, n);
            let ground = ground_built_smart(&mut world, &prog);
            let naf = NafProgram::from_ground(&ground).expect("positive program");

            group.bench_with_input(
                BenchmarkId::new(format!("ground_smart/{label}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let mut w = world.clone();
                        black_box(ground_built_smart(&mut w, &prog))
                    });
                },
            );
            if n <= 32 {
                group.bench_with_input(
                    BenchmarkId::new(format!("ground_exhaustive/{label}"), n),
                    &n,
                    |b, _| {
                        b.iter(|| {
                            let mut w = world.clone();
                            black_box(ground_exhaustive(&mut w, &prog, &big_config()).unwrap())
                        });
                    },
                );
            }
            group.bench_with_input(
                BenchmarkId::new(format!("ordered_fixpoint/{label}"), n),
                &n,
                |b, _| {
                    let view = View::new(&ground, CompId(0));
                    b.iter(|| black_box(least_model(&view)));
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("classical_tp/{label}"), n),
                &n,
                |b, _| {
                    b.iter(|| black_box(least_model_positive(&naf)));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ancestor);
criterion_main!(benches);
