//! Experiment E4/B3 — Fig. 3 (the loan program) at scale.
//!
//! Workload: `expert_panel(N, inflation, loan_rate)` — N threshold
//! experts (pro-loan on inflation, anti-loan on loan rate, with
//! refinement edges exactly like Expert3 < Expert4 in the paper) above
//! a `myself` component holding the scenario facts.
//!
//! Measured: end-to-end advice (smart grounding + fixpoint in
//! `myself`) and fixpoint-only cost, across panel sizes and the
//! paper's §1 indicator scenarios.
//!
//! Expected shape: grounding dominates (comparison evaluation over the
//! numeric domain); fixpoint cost stays tiny because each expert
//! contributes O(1) ground rules per derivable indicator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use olp_bench::ground_built_smart;
use olp_core::{CompId, World};
use olp_semantics::{least_model, View};
use olp_workload::expert_panel;
use std::hint::black_box;
use std::time::Duration;

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_experts");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for &n in &[4usize, 16, 64] {
        // Scenario 3 of the paper: refinement decides.
        let mut world = World::new();
        let prog = expert_panel(&mut world, n, 19, 16);
        let ground = ground_built_smart(&mut world, &prog);
        let myself = CompId(0);

        group.bench_with_input(BenchmarkId::new("end_to_end", n), &n, |b, _| {
            b.iter(|| {
                let mut w = world.clone();
                let g = ground_built_smart(&mut w, &prog);
                black_box(least_model(&View::new(&g, myself)))
            });
        });
        group.bench_with_input(BenchmarkId::new("fixpoint_only", n), &n, |b, _| {
            let view = View::new(&ground, myself);
            b.iter(|| black_box(least_model(&view)));
        });
    }
    // Scenario sweep at fixed panel size: the three §1 situations.
    for (label, infl, rate) in [
        ("inflation_only", 12, 0),
        ("conflict", 12, 16),
        ("refined", 19, 16),
    ] {
        let mut world = World::new();
        let prog = expert_panel(&mut world, 16, infl, rate);
        let ground = ground_built_smart(&mut world, &prog);
        group.bench_function(BenchmarkId::new("scenario", label), |b| {
            let view = View::new(&ground, CompId(0));
            b.iter(|| black_box(least_model(&view)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
