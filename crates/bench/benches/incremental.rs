//! Experiment B9 — incremental KB maintenance: delta grounding plus
//! stratum-local recomputation vs a full refresh on every mutation.
//!
//! Workload: [`olp_workload::mutation_stream`] — an ancestor chain of
//! `n_base` `parent` facts under the usual transitive-closure rules,
//! mutated by asserting/retracting single `parent` edges. Both sides
//! use the same smart grounder; the baseline merely has incremental
//! maintenance switched off (`Kb::set_incremental(false)`), so every
//! mutation regrounds the whole program and drops all model caches.
//!
//! * `assert_cycle_*` — one isolated fresh edge asserted and then
//!   retracted (the retract restores the KB, so every iteration sees
//!   the same state). The incremental path seeds a constant-size delta
//!   join and replays it to a fixpoint; the full refresh recomputes the
//!   O(n²) `anc` closure from scratch.
//! * `stream_*` — replaying a full 32-step mutation stream (asserts
//!   and retracts, some attached to the chain) with a least-model
//!   query after every step, the end-to-end maintenance loop.
//!
//! Expected shape: the incremental side wins by a factor that grows
//! with the chain length (the acceptance gate checked by `experiments`
//! is ≥5x on the single assert at the largest n).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use olp_core::World;
use olp_ground::GroundConfig;
use olp_kb::{GroundStrategy, Kb, KbBuilder};
use olp_parser::parse_program;
use olp_workload::{mutation_stream, Mutation, MutationCfg};
use std::hint::black_box;
use std::time::Duration;

fn stream_cfg(n_base: usize) -> MutationCfg {
    MutationCfg {
        n_base,
        ..MutationCfg::default()
    }
}

/// Builds a KB over the `mutation_stream` base chain. `incremental`
/// toggles delta maintenance; the grounder is Smart either way.
fn build_kb(n_base: usize, incremental: bool) -> Kb {
    let (base, _) = mutation_stream(&stream_cfg(n_base), 7);
    let mut world = World::new();
    let prog = parse_program(&mut world, &base).expect("workload parses");
    let mut kb = KbBuilder::from_parts(world, prog)
        .build_with(GroundStrategy::Smart, &GroundConfig::default())
        .expect("workload grounds");
    kb.set_incremental(incremental);
    let _ = kb.model("main").expect("known object");
    kb
}

fn bench_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    const EDGE: &str = "parent(fresh_a, fresh_b).";
    for &n in &[64usize, 128] {
        for (label, incremental) in [
            ("assert_cycle_incremental", true),
            ("assert_cycle_full_refresh", false),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                let mut kb = build_kb(n, incremental);
                b.iter(|| {
                    kb.assert_rule("main", EDGE).expect("assert grounds");
                    assert!(kb.retract_rule("main", EDGE).expect("retract grounds"));
                    black_box(kb.epoch())
                });
            });
        }
        for (label, incremental) in [("stream_incremental", true), ("stream_full_refresh", false)] {
            let (_, muts) = mutation_stream(&stream_cfg(n), 7);
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    let mut kb = build_kb(n, incremental);
                    for m in &muts {
                        match m {
                            Mutation::Assert { object, rule } => {
                                kb.assert_rule(object, rule).expect("assert grounds");
                            }
                            Mutation::Retract { object, rule } => {
                                kb.retract_rule(object, rule).expect("retract grounds");
                            }
                        }
                        black_box(kb.model("main").expect("known object"));
                    }
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
