//! Experiment B10 — the parallel evaluation pipeline: multi-threaded
//! grounding, the stratum-wavefront least model, and the
//! selectivity-driven join planner.
//!
//! Workload: [`olp_workload::ancestor`] over a random edge relation —
//! one big recursive component whose semi-naive frontier batches are
//! wide enough to shard, plus [`olp_workload::defeating_cliques`] as
//! the many-strata shape for the wavefront. Three groups:
//!
//! * `ground` — `ground_smart` at 1/2/4/8 threads (the BSP closure is
//!   bit-deterministic, so every thread count produces the identical
//!   program; only wall-clock changes);
//! * `least_model` — sequential stratified engine vs the wavefront at
//!   2/4/8 threads on the same ground view;
//! * `planner` — grounding with the join planner on vs off at a single
//!   thread, isolating the literal-reordering / positional-index win
//!   from the parallelism win.
//!
//! The acceptance gates (≥2.5x grounding at 8 threads on the scaled
//! ancestor, ≥1.3x planner-alone at 1 thread) are checked by the
//! `experiments` binary; this bench is the fine-grained Criterion view.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use olp_core::{CompId, World};
use olp_ground::{ground_smart, GroundConfig, GroundProgram};
use olp_semantics::{least_model_parallel, least_model_stratified, View};
use olp_workload::{ancestor, defeating_cliques, GraphShape};
use std::hint::black_box;
use std::time::Duration;

const ANCESTOR_NODES: usize = 120;
const ANCESTOR_EDGES: usize = 360;

fn ancestor_ground(threads: usize, plan: bool) -> (World, GroundProgram) {
    let mut world = World::new();
    let prog = ancestor(
        &mut world,
        GraphShape::Random {
            edges: ANCESTOR_EDGES,
            seed: 42,
        },
        ANCESTOR_NODES,
    );
    let cfg = GroundConfig {
        threads,
        plan,
        ..GroundConfig::default()
    };
    let g = ground_smart(&mut world, &prog, &cfg).expect("ancestor grounds");
    (world, g)
}

fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));

    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("ground/ancestor", threads),
            &threads,
            |b, &threads| b.iter(|| black_box(ancestor_ground(threads, true))),
        );
    }

    // Wavefront vs sequential stratified, same precomputed ground view.
    let (_w, ga) = ancestor_ground(1, true);
    let view = View::new(&ga, CompId(0));
    group.bench_function(BenchmarkId::new("least_model/ancestor", "seq"), |b| {
        b.iter(|| black_box(least_model_stratified(&view)))
    });
    for &threads in &[2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("least_model/ancestor/wavefront", threads),
            &threads,
            |b, &threads| b.iter(|| black_box(least_model_parallel(&view, threads))),
        );
    }

    // Many independent strata: the wavefront's natural shape.
    let mut world = World::new();
    let prog = defeating_cliques(&mut world, 12);
    let gd = ground_smart(&mut world, &prog, &GroundConfig::default()).expect("cliques ground");
    let dview = View::new(&gd, CompId(0));
    group.bench_function(BenchmarkId::new("least_model/cliques", "seq"), |b| {
        b.iter(|| black_box(least_model_stratified(&dview)))
    });
    for &threads in &[2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("least_model/cliques/wavefront", threads),
            &threads,
            |b, &threads| b.iter(|| black_box(least_model_parallel(&dview, threads))),
        );
    }

    // Planner ablation at one thread: textual join order + full scans
    // vs selectivity-greedy order + positional indexes.
    group.bench_function(BenchmarkId::new("planner/ancestor", "on"), |b| {
        b.iter(|| black_box(ancestor_ground(1, true)))
    });
    group.bench_function(BenchmarkId::new("planner/ancestor", "off"), |b| {
        b.iter(|| black_box(ancestor_ground(1, false)))
    });

    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
