//! Experiment B5 — stable model enumeration: ordered engine vs
//! classical baselines.
//!
//! Workload: random seminegative programs (seeded). The same program is
//! solved three ways:
//!
//! * `ordered_stable` — stable models of `OV(C)` in `C` via the naive
//!   ordered enumeration (Definition 9 search over derivable atoms);
//! * `ordered_stable_propagating` — the same with Def.-3 unit
//!   propagation (ablation: how much forced structure prunes);
//! * `ordered_stable_parallel4` — the propagating search split over 4
//!   scoped threads. On these micro-instances thread startup dominates
//!   (the honest result: parallelism loses below ~ms-scale searches and
//!   only pays on large contested cores);
//! * `sz_partial_stable` — Saccà–Zaniolo partial stable models via
//!   3-valued enumeration (the Cor. 1 right-hand side);
//! * `gl_total_stable` — Gelfond–Lifschitz total stable models via the
//!   WFS-seeded DPLL search.
//!
//! Expected shape: all three are exponential in the residual
//! (WFS-undefined) atoms; the GL search is fastest (2-valued, strong
//! propagation), the ordered enumeration pays for generality (3-valued
//! branching), and SZ enumeration over the full atom set is slowest —
//! the ordered engine's derivability pruning is the difference
//! (ablation: it matches SZ results while searching a smaller space).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use olp_classic::{partial_stable_models, stable_models_total, NafProgram};
use olp_core::World;
use olp_ground::{ground_exhaustive, GroundConfig};
use olp_semantics::{stable_models, stable_models_naive, View};
use olp_transform::ordered_version;
use olp_workload::{random_seminegative, RandomCfg};
use std::hint::black_box;
use std::time::Duration;

fn bench_stable(c: &mut Criterion) {
    let mut group = c.benchmark_group("stable_enum");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for &n_atoms in &[6usize, 8, 10] {
        let cfg = RandomCfg {
            n_atoms,
            n_rules: n_atoms * 2,
            max_body: 2,
            neg_head_prob: 0.0,
            neg_body_prob: 0.5,
            n_components: 1,
            edge_prob: 0.0,
        };
        let gc = GroundConfig::default();
        // Fixed seed per size for comparability across solvers.
        let mut world = World::new();
        let flat = random_seminegative(&mut world, &cfg, 1234);
        let rules = flat.components[0].rules.clone();
        let flat_ground = ground_exhaustive(&mut world, &flat, &gc).unwrap();
        let (ov_prog, ov_c) = ordered_version(&mut world, &rules);
        let ov = ground_exhaustive(&mut world, &ov_prog, &gc).unwrap();
        let n = world.atoms.len();
        let mut naf = NafProgram::from_ground(&flat_ground).unwrap();
        naf.n_atoms = n;

        group.bench_with_input(
            BenchmarkId::new("ordered_stable", n_atoms),
            &n_atoms,
            |b, _| {
                let view = View::new(&ov, ov_c);
                b.iter(|| black_box(stable_models_naive(&view, n)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("ordered_stable_propagating", n_atoms),
            &n_atoms,
            |b, _| {
                let view = View::new(&ov, ov_c);
                b.iter(|| black_box(stable_models(&view, n)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("ordered_stable_parallel4", n_atoms),
            &n_atoms,
            |b, _| {
                let view = View::new(&ov, ov_c);
                b.iter(|| black_box(olp_semantics::stable_models_parallel(&view, n, 4)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sz_partial_stable", n_atoms),
            &n_atoms,
            |b, _| {
                b.iter(|| black_box(partial_stable_models(&naf)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("gl_total_stable", n_atoms),
            &n_atoms,
            |b, _| {
                b.iter(|| black_box(stable_models_total(&naf)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_stable);
criterion_main!(benches);
